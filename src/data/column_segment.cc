#include "data/column_segment.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace hyfd {
namespace {

/// Largest integer magnitude that survives an int → double widening exactly.
constexpr int64_t kMaxExactInt = int64_t{1} << 53;

bool ParseInt(const std::string& lexeme, int64_t* value) {
  if (lexeme.empty()) return false;
  const char* first = lexeme.data();
  const char* last = first + lexeme.size();
  auto [ptr, ec] = std::from_chars(first, last, *value);
  return ec == std::errc() && ptr == last;
}

bool ParseDouble(const std::string& lexeme, double* value) {
  if (lexeme.empty()) return false;
  const char* first = lexeme.data();
  const char* last = first + lexeme.size();
  auto [ptr, ec] = std::from_chars(first, last, *value);
  return ec == std::errc() && ptr == last && std::isfinite(*value);
}

bool IsDigits(const std::string& s, size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

/// Strict ISO date: "YYYY-MM-DD" with month 01–12 and day 01–31. Strictness
/// keeps canonicalization the identity and chronological order lexicographic.
bool IsDate(const std::string& s) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return false;
  if (!IsDigits(s, 0, 4) || !IsDigits(s, 5, 7) || !IsDigits(s, 8, 10)) {
    return false;
  }
  const int month = (s[5] - '0') * 10 + (s[6] - '0');
  const int day = (s[8] - '0') * 10 + (s[9] - '0');
  return month >= 1 && month <= 12 && day >= 1 && day <= 31;
}

std::string RenderInt(int64_t value) { return std::to_string(value); }

std::string RenderDouble(double value) {
  if (value == 0.0) return "0";  // fold -0 into 0: they are value-equal
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  HYFD_CHECK(ec == std::errc(), "ColumnSegment: double rendering overflow");
  return std::string(buf, ptr);
}

uint64_t FoldBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t FoldValue(uint64_t h, uint64_t v) { return FoldBytes(h, &v, sizeof(v)); }

}  // namespace

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kString:
      return "string";
    case ColumnType::kInt:
      return "int";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kDate:
      return "date";
  }
  return "?";
}

ColumnType LexemeType(const std::string& lexeme) {
  int64_t i;
  if (ParseInt(lexeme, &i)) {
    return (i >= -kMaxExactInt && i <= kMaxExactInt) ? ColumnType::kInt
                                                     : ColumnType::kString;
  }
  if (IsDate(lexeme)) return ColumnType::kDate;
  double d;
  if (ParseDouble(lexeme, &d)) return ColumnType::kDouble;
  return ColumnType::kString;
}

ColumnType WidenType(ColumnType a, ColumnType b) {
  if (a == b) return a;
  if (a == ColumnType::kString || b == ColumnType::kString) {
    return ColumnType::kString;
  }
  const bool numeric_a = a == ColumnType::kInt || a == ColumnType::kDouble;
  const bool numeric_b = b == ColumnType::kInt || b == ColumnType::kDouble;
  if (numeric_a && numeric_b) return ColumnType::kDouble;
  return ColumnType::kString;  // numeric vs date: no common supertype but string
}

std::string CanonicalForm(ColumnType type, const std::string& lexeme) {
  switch (type) {
    case ColumnType::kInt: {
      int64_t v;
      HYFD_CHECK(ParseInt(lexeme, &v),
                 "CanonicalForm: lexeme is not an integer");
      return RenderInt(v);
    }
    case ColumnType::kDouble: {
      double v;
      HYFD_CHECK(ParseDouble(lexeme, &v),
                 "CanonicalForm: lexeme is not a finite double");
      return RenderDouble(v);
    }
    case ColumnType::kDate:
    case ColumnType::kString:
      return lexeme;
  }
  return lexeme;
}

bool TypedLess(ColumnType type, const std::string& a, const std::string& b) {
  switch (type) {
    case ColumnType::kInt: {
      int64_t va = 0;
      int64_t vb = 0;
      ParseInt(a, &va);
      ParseInt(b, &vb);
      return va < vb;
    }
    case ColumnType::kDouble: {
      double va = 0;
      double vb = 0;
      ParseDouble(a, &va);
      ParseDouble(b, &vb);
      if (va != vb) return va < vb;
      return a < b;  // canonical forms make ties impossible; keep total order
    }
    case ColumnType::kDate:
    case ColumnType::kString:
      return a < b;
  }
  return a < b;
}

const std::string& ColumnSegment::EmptyValue() {
  static const std::string* empty = new std::string();
  return *empty;
}

ColumnSegment ColumnSegment::FromParts(ColumnType type,
                                       std::vector<std::string> dictionary,
                                       std::vector<uint32_t> codes) {
  HYFD_CHECK(dictionary.size() < kNullCode,
             "ColumnSegment: dictionary too large (the NULL code is reserved)");
  ColumnSegment segment;
  segment.type_ = type;
  segment.has_values_ = !dictionary.empty();
  segment.sorted_ = true;
  segment.dictionary_ = std::move(dictionary);
  segment.codes_ = std::move(codes);
  // The encode index is built lazily on the first Encode() — a loaded
  // segment that is only ever read never pays for it.
  for (uint32_t i = 0; i < segment.dictionary_.size(); ++i) {
    const std::string& entry = segment.dictionary_[i];
    // Canonical-form check, specialized by type: for strings the canonical
    // form is the identity (nothing to check), which keeps the hot loader
    // path free of per-entry allocations.
    switch (type) {
      case ColumnType::kString:
        break;
      case ColumnType::kDate:
        HYFD_CHECK(IsDate(entry),
                   "ColumnSegment: dictionary entry is not an ISO date");
        break;
      case ColumnType::kInt:
      case ColumnType::kDouble:
        HYFD_CHECK(CanonicalForm(type, entry) == entry,
                   "ColumnSegment: dictionary entry is not in canonical form");
        break;
    }
    if (i > 0) {
      HYFD_CHECK(TypedLess(type, segment.dictionary_[i - 1], entry),
                 "ColumnSegment: dictionary is not sorted-unique");
    }
  }
  std::vector<uint8_t> referenced(segment.dictionary_.size(), 0);
  for (uint32_t code : segment.codes_) {
    if (code == kNullCode) continue;
    HYFD_CHECK(code < segment.dictionary_.size(),
               "ColumnSegment: code out of dictionary range");
    referenced[code] = 1;
  }
  for (size_t i = 0; i < referenced.size(); ++i) {
    HYFD_CHECK(referenced[i] != 0,
               "ColumnSegment: dictionary entry referenced by no code");
  }
  return segment;
}

void ColumnSegment::RebuildEncodeIndex() {
  encode_.clear();
  encode_.reserve(dictionary_.size());
  for (uint32_t i = 0; i < dictionary_.size(); ++i) {
    encode_.emplace(dictionary_[i], i);
  }
}

uint32_t ColumnSegment::Encode(const std::string& lexeme) {
  if (encode_.size() != dictionary_.size()) RebuildEncodeIndex();
  const ColumnType narrowest = LexemeType(lexeme);
  if (!has_values_) {
    has_values_ = true;
    type_ = narrowest;
  } else if (WidenType(type_, narrowest) != type_) {
    Widen(WidenType(type_, narrowest));
  }
  std::string canonical = CanonicalForm(type_, lexeme);
  if (auto it = encode_.find(canonical); it != encode_.end()) {
    return it->second;
  }
  HYFD_CHECK(dictionary_.size() + 1 < kNullCode,
             "ColumnSegment: dictionary overflow (the NULL code is reserved)");
  const auto code = static_cast<uint32_t>(dictionary_.size());
  // First-occurrence order: appending at the end breaks the canonical sorted
  // layout unless the new value happens to extend it.
  if (sorted_ && !dictionary_.empty() &&
      !TypedLess(type_, dictionary_.back(), canonical)) {
    sorted_ = false;
  }
  dictionary_.push_back(canonical);
  encode_.emplace(std::move(canonical), code);
  return code;
}

void ColumnSegment::Widen(ColumnType wider) {
  type_ = wider;
  encode_.clear();
  encode_.reserve(dictionary_.size());
  for (uint32_t i = 0; i < dictionary_.size(); ++i) {
    // Injective re-render: exact ints map to distinct doubles, and widening
    // to string keeps the (already unique) canonical lexemes verbatim — so
    // codes never merge and stay valid identity.
    dictionary_[i] = CanonicalForm(wider, dictionary_[i]);
    const bool inserted = encode_.emplace(dictionary_[i], i).second;
    HYFD_CHECK(inserted, "ColumnSegment: type widening merged two values");
  }
  sorted_ = false;
}

void ColumnSegment::Append(const std::string& lexeme) {
  codes_.push_back(Encode(lexeme));
}

void ColumnSegment::AppendNull() { codes_.push_back(kNullCode); }

void ColumnSegment::Set(size_t row, const std::string& lexeme) {
  codes_[row] = Encode(lexeme);
  sorted_ = false;
}

ColumnSegment ColumnSegment::Head(size_t n) const {
  ColumnSegment head = *this;
  head.codes_.resize(std::min(n, codes_.size()));
  head.sorted_ = false;  // truncation may orphan dictionary entries
  return head;
}

size_t ColumnSegment::DistinctCount() const {
  std::vector<uint8_t> seen(dictionary_.size(), 0);
  size_t distinct = 0;
  for (uint32_t code : codes_) {
    if (code == kNullCode || seen[code] != 0) continue;
    seen[code] = 1;
    ++distinct;
  }
  return distinct;
}

ColumnSegment::NormalizationPlan ColumnSegment::PlanNormalization() const {
  NormalizationPlan plan;
  std::vector<uint8_t> referenced(dictionary_.size(), 0);
  for (uint32_t code : codes_) {
    if (code != kNullCode) referenced[code] = 1;
  }
  plan.slots.reserve(dictionary_.size());
  for (uint32_t i = 0; i < dictionary_.size(); ++i) {
    if (referenced[i] != 0) plan.slots.push_back(i);
  }
  std::sort(plan.slots.begin(), plan.slots.end(), [&](uint32_t a, uint32_t b) {
    return TypedLess(type_, dictionary_[a], dictionary_[b]);
  });
  plan.old_to_new.assign(dictionary_.size(), kNullCode);
  for (uint32_t new_code = 0; new_code < plan.slots.size(); ++new_code) {
    plan.old_to_new[plan.slots[new_code]] = new_code;
  }
  return plan;
}

void ColumnSegment::Normalize() {
  const NormalizationPlan plan = PlanNormalization();
  std::vector<std::string> sorted_dictionary;
  sorted_dictionary.reserve(plan.slots.size());
  for (uint32_t old_code : plan.slots) {
    sorted_dictionary.push_back(std::move(dictionary_[old_code]));
  }
  dictionary_ = std::move(sorted_dictionary);
  for (uint32_t& code : codes_) {
    if (code != kNullCode) code = plan.old_to_new[code];
  }
  RebuildEncodeIndex();
  sorted_ = true;
}

uint64_t ColumnSegment::FoldFingerprint(uint64_t h) const {
  h = FoldValue(h, static_cast<uint64_t>(type_));
  h = FoldValue(h, dictionary_.size());
  for (const std::string& entry : dictionary_) {
    h = FoldValue(h, entry.size());
    h = FoldBytes(h, entry.data(), entry.size());
  }
  h = FoldValue(h, codes_.size());
  h = FoldBytes(h, codes_.data(), codes_.size() * sizeof(uint32_t));
  return h;
}

size_t ColumnSegment::MemoryBytes() const {
  size_t bytes = codes_.capacity() * sizeof(uint32_t);
  for (const std::string& entry : dictionary_) {
    bytes += sizeof(std::string) + entry.capacity();
  }
  // The encode index roughly doubles the dictionary footprint.
  bytes += encode_.size() * (sizeof(std::string) + sizeof(uint32_t) * 2);
  return bytes;
}

void ColumnSegment::CheckInvariants() const {
  HYFD_CHECK(dictionary_.size() < kNullCode,
             "ColumnSegment: dictionary size collides with the NULL code");
  HYFD_CHECK(encode_.empty() || encode_.size() == dictionary_.size(),
             "ColumnSegment: encode index size disagrees with the dictionary");
  for (uint32_t i = 0; i < dictionary_.size(); ++i) {
    const std::string& entry = dictionary_[i];
    HYFD_CHECK(CanonicalForm(type_, entry) == entry,
               "ColumnSegment: dictionary entry is not in canonical form");
    if (!encode_.empty()) {
      auto it = encode_.find(entry);
      HYFD_CHECK(it != encode_.end() && it->second == i,
                 "ColumnSegment: encode index does not map entry to its code");
    }
  }
  for (uint32_t code : codes_) {
    HYFD_CHECK(code == kNullCode || code < dictionary_.size(),
               "ColumnSegment: code out of dictionary range");
  }
  if (sorted_) {
    for (size_t i = 1; i < dictionary_.size(); ++i) {
      HYFD_CHECK(TypedLess(type_, dictionary_[i - 1], dictionary_[i]),
                 "ColumnSegment: sorted segment has an unsorted or duplicate "
                 "dictionary");
    }
    std::vector<uint8_t> referenced(dictionary_.size(), 0);
    for (uint32_t code : codes_) {
      if (code != kNullCode) referenced[code] = 1;
    }
    for (size_t i = 0; i < referenced.size(); ++i) {
      HYFD_CHECK(referenced[i] != 0,
                 "ColumnSegment: sorted segment has an unreferenced "
                 "dictionary entry");
    }
  }
}

}  // namespace hyfd

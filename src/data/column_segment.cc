#include "data/column_segment.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace hyfd {
namespace {

/// Largest integer magnitude that survives an int → double widening exactly.
constexpr int64_t kMaxExactInt = int64_t{1} << 53;

enum class IntParse { kNo, kYes, kOverflow };

IntParse ParseIntStatus(const std::string& lexeme, int64_t* value) {
  if (lexeme.empty()) return IntParse::kNo;
  const char* first = lexeme.data();
  const char* last = first + lexeme.size();
  auto [ptr, ec] = std::from_chars(first, last, *value);
  if (ptr != last) return IntParse::kNo;
  if (ec == std::errc()) return IntParse::kYes;
  if (ec == std::errc::result_out_of_range) return IntParse::kOverflow;
  return IntParse::kNo;
}

bool ParseInt(const std::string& lexeme, int64_t* value) {
  return ParseIntStatus(lexeme, value) == IntParse::kYes;
}

bool ParseDouble(const std::string& lexeme, double* value) {
  if (lexeme.empty()) return false;
  const char* first = lexeme.data();
  const char* last = first + lexeme.size();
  auto [ptr, ec] = std::from_chars(first, last, *value);
  return ec == std::errc() && ptr == last && std::isfinite(*value);
}

bool IsDigits(const std::string& s, size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

/// Strict ISO date: "YYYY-MM-DD" with month 01–12 and day 01–31. Strictness
/// keeps canonicalization the identity and chronological order lexicographic.
bool IsDate(const std::string& s) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return false;
  if (!IsDigits(s, 0, 4) || !IsDigits(s, 5, 7) || !IsDigits(s, 8, 10)) {
    return false;
  }
  const int month = (s[5] - '0') * 10 + (s[6] - '0');
  const int day = (s[8] - '0') * 10 + (s[9] - '0');
  return month >= 1 && month <= 12 && day >= 1 && day <= 31;
}

std::string RenderInt(int64_t value) { return std::to_string(value); }

std::string RenderDouble(double value) {
  if (value == 0.0) return "0";  // fold -0 into 0: they are value-equal
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  HYFD_CHECK(ec == std::errc(), "ColumnSegment: double rendering overflow");
  return std::string(buf, ptr);
}

uint64_t FoldBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t FoldValue(uint64_t h, uint64_t v) { return FoldBytes(h, &v, sizeof(v)); }

}  // namespace

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kString:
      return "string";
    case ColumnType::kInt:
      return "int";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kDate:
      return "date";
  }
  return "?";
}

ColumnType LexemeType(const std::string& lexeme) {
  int64_t i;
  switch (ParseIntStatus(lexeme, &i)) {
    case IntParse::kYes:
      return (i >= -kMaxExactInt && i <= kMaxExactInt) ? ColumnType::kInt
                                                       : ColumnType::kString;
    case IntParse::kOverflow:
      // An integer lexeme too large for int64 must not fall through to the
      // double parse: distinct 20-digit ids would merge onto one inexact
      // double. Same exactness rule as the ±2^53 guard above.
      return ColumnType::kString;
    case IntParse::kNo:
      break;
  }
  if (IsDate(lexeme)) return ColumnType::kDate;
  double d;
  if (ParseDouble(lexeme, &d)) return ColumnType::kDouble;
  return ColumnType::kString;
}

ColumnType WidenType(ColumnType a, ColumnType b) {
  if (a == b) return a;
  if (a == ColumnType::kString || b == ColumnType::kString) {
    return ColumnType::kString;
  }
  const bool numeric_a = a == ColumnType::kInt || a == ColumnType::kDouble;
  const bool numeric_b = b == ColumnType::kInt || b == ColumnType::kDouble;
  if (numeric_a && numeric_b) return ColumnType::kDouble;
  return ColumnType::kString;  // numeric vs date: no common supertype but string
}

std::string CanonicalForm(ColumnType type, const std::string& lexeme) {
  switch (type) {
    case ColumnType::kInt: {
      int64_t v;
      HYFD_CHECK(ParseInt(lexeme, &v),
                 "CanonicalForm: lexeme is not an integer");
      return RenderInt(v);
    }
    case ColumnType::kDouble: {
      double v;
      HYFD_CHECK(ParseDouble(lexeme, &v),
                 "CanonicalForm: lexeme is not a finite double");
      return RenderDouble(v);
    }
    case ColumnType::kDate:
    case ColumnType::kString:
      return lexeme;
  }
  return lexeme;
}

bool TypedLess(ColumnType type, const std::string& a, const std::string& b) {
  switch (type) {
    case ColumnType::kInt: {
      int64_t va = 0;
      int64_t vb = 0;
      ParseInt(a, &va);
      ParseInt(b, &vb);
      return va < vb;
    }
    case ColumnType::kDouble: {
      double va = 0;
      double vb = 0;
      ParseDouble(a, &va);
      ParseDouble(b, &vb);
      if (va != vb) return va < vb;
      return a < b;  // canonical forms make ties impossible; keep total order
    }
    case ColumnType::kDate:
    case ColumnType::kString:
      return a < b;
  }
  return a < b;
}

const std::string& ColumnSegment::EmptyValue() {
  static const std::string* empty = new std::string();
  return *empty;
}

ColumnSegment ColumnSegment::FromParts(ColumnType type,
                                       std::vector<std::string> dictionary,
                                       std::vector<uint32_t> codes,
                                       std::vector<RawSpelling> raw_spellings,
                                       std::vector<VariantRow> variant_rows) {
  HYFD_CHECK(dictionary.size() < kNullCode,
             "ColumnSegment: dictionary too large (the NULL code is reserved)");
  ColumnSegment segment;
  segment.type_ = type;
  segment.has_values_ = !dictionary.empty();
  segment.sorted_ = true;
  segment.dictionary_ = std::move(dictionary);
  segment.codes_ = std::move(codes);
  for (RawSpelling& spelling : raw_spellings) {
    HYFD_CHECK(segment.raw_spelling_
                   .emplace(spelling.first, std::move(spelling.second))
                   .second,
               "ColumnSegment: duplicate raw-spelling code");
  }
  for (VariantRow& variant : variant_rows) {
    HYFD_CHECK(segment.variant_rows_
                   .emplace(variant.first, std::move(variant.second))
                   .second,
               "ColumnSegment: duplicate variant row");
  }
  segment.CheckRawSpellingInvariants();
  // The encode index is built lazily on the first Encode() — a loaded
  // segment that is only ever read never pays for it.
  for (uint32_t i = 0; i < segment.dictionary_.size(); ++i) {
    const std::string& entry = segment.dictionary_[i];
    // Canonical-form check, specialized by type: for strings the canonical
    // form is the identity (nothing to check), which keeps the hot loader
    // path free of per-entry allocations.
    switch (type) {
      case ColumnType::kString:
        break;
      case ColumnType::kDate:
        HYFD_CHECK(IsDate(entry),
                   "ColumnSegment: dictionary entry is not an ISO date");
        break;
      case ColumnType::kInt:
      case ColumnType::kDouble:
        HYFD_CHECK(CanonicalForm(type, entry) == entry,
                   "ColumnSegment: dictionary entry is not in canonical form");
        break;
    }
    if (i > 0) {
      HYFD_CHECK(TypedLess(type, segment.dictionary_[i - 1], entry),
                 "ColumnSegment: dictionary is not sorted-unique");
    }
  }
  std::vector<uint8_t> referenced(segment.dictionary_.size(), 0);
  for (uint32_t code : segment.codes_) {
    if (code == kNullCode) continue;
    HYFD_CHECK(code < segment.dictionary_.size(),
               "ColumnSegment: code out of dictionary range");
    referenced[code] = 1;
  }
  for (size_t i = 0; i < referenced.size(); ++i) {
    HYFD_CHECK(referenced[i] != 0,
               "ColumnSegment: dictionary entry referenced by no code");
  }
  return segment;
}

void ColumnSegment::RebuildEncodeIndex() {
  encode_.clear();
  encode_.reserve(dictionary_.size());
  for (uint32_t i = 0; i < dictionary_.size(); ++i) {
    encode_.emplace(dictionary_[i], i);
  }
}

const std::string& ColumnSegment::CreatingSpelling(uint32_t code) const {
  const auto it = raw_spelling_.find(code);
  return it != raw_spelling_.end() ? it->second : dictionary_[code];
}

uint32_t ColumnSegment::Encode(const std::string& lexeme, size_t row) {
  if (encode_.size() != dictionary_.size()) RebuildEncodeIndex();
  const ColumnType narrowest = LexemeType(lexeme);
  if (!has_values_) {
    has_values_ = true;
    type_ = narrowest;
  } else if (WidenType(type_, narrowest) != type_) {
    Widen(WidenType(type_, narrowest));
  }
  const bool numeric =
      type_ == ColumnType::kInt || type_ == ColumnType::kDouble;
  std::string canonical = CanonicalForm(type_, lexeme);
  if (auto it = encode_.find(canonical); it != encode_.end()) {
    // Numeric merging of a different spelling ("07" joining the value "7")
    // is provisional: remember the raw lexeme so a later widening to string
    // can split this row back out. Lexeme identity must not depend on the
    // order in which spellings arrived.
    if (numeric && lexeme != CreatingSpelling(it->second)) {
      variant_rows_[row] = lexeme;
    }
    return it->second;
  }
  HYFD_CHECK(dictionary_.size() + 1 < kNullCode,
             "ColumnSegment: dictionary overflow (the NULL code is reserved)");
  const auto code = static_cast<uint32_t>(dictionary_.size());
  // First-occurrence order: appending at the end breaks the canonical sorted
  // layout unless the new value happens to extend it.
  if (sorted_ && !dictionary_.empty() &&
      !TypedLess(type_, dictionary_.back(), canonical)) {
    sorted_ = false;
  }
  if (numeric && lexeme != canonical) raw_spelling_.emplace(code, lexeme);
  dictionary_.push_back(canonical);
  encode_.emplace(std::move(canonical), code);
  return code;
}

void ColumnSegment::Widen(ColumnType wider) {
  const ColumnType narrow = type_;
  if (wider == ColumnType::kString &&
      (narrow == ColumnType::kInt || narrow == ColumnType::kDouble)) {
    WidenNumericToString();
    return;
  }
  type_ = wider;
  encode_.clear();
  encode_.reserve(dictionary_.size());
  for (uint32_t i = 0; i < dictionary_.size(); ++i) {
    // Injective re-render: exact ints map to distinct doubles, and a date
    // column falls back to string verbatim (dates are their own canonical
    // form) — so codes never merge and stay valid identity.
    std::string rendered = CanonicalForm(wider, dictionary_[i]);
    // An int whose rendering changes under double ("1000000000000000" →
    // "1e+15") was itself a raw spelling of the double value; keep it so a
    // later widening to string restores it.
    if (wider == ColumnType::kDouble && rendered != dictionary_[i] &&
        raw_spelling_.find(i) == raw_spelling_.end()) {
      raw_spelling_.emplace(i, std::move(dictionary_[i]));
    }
    dictionary_[i] = std::move(rendered);
    const bool inserted = encode_.emplace(dictionary_[i], i).second;
    HYFD_CHECK(inserted, "ColumnSegment: type widening merged two values");
  }
  sorted_ = false;
}

void ColumnSegment::WidenNumericToString() {
  type_ = ColumnType::kString;
  // String identity is lexeme identity: each code's dictionary entry becomes
  // the raw spelling that created it, and every row whose spelling had been
  // numerically merged onto another spelling's code splits onto its own.
  for (auto& [code, spelling] : raw_spelling_) {
    dictionary_[code] = std::move(spelling);
  }
  raw_spelling_.clear();
  // The index keyed the old numeric canonical forms; re-key it on the
  // restored lexemes before the caller's lookup (and the splits below).
  RebuildEncodeIndex();
  if (!variant_rows_.empty()) {
    // Split in ascending row order so code numbering is deterministic.
    std::vector<uint64_t> rows;
    rows.reserve(variant_rows_.size());
    for (const auto& [row, raw] : variant_rows_) rows.push_back(row);
    std::sort(rows.begin(), rows.end());
    for (uint64_t row : rows) {
      std::string& raw = variant_rows_[row];
      uint32_t code;
      if (auto it = encode_.find(raw); it != encode_.end()) {
        code = it->second;  // an earlier variant row already split this lexeme
      } else {
        HYFD_CHECK(dictionary_.size() + 1 < kNullCode,
                   "ColumnSegment: dictionary overflow (the NULL code is "
                   "reserved)");
        code = static_cast<uint32_t>(dictionary_.size());
        dictionary_.push_back(raw);
        encode_.emplace(std::move(raw), code);
      }
      codes_[row] = code;
    }
    variant_rows_.clear();
    // Codes of existing rows changed: anything keyed on them is invalid.
    ++identity_epoch_;
  }
  sorted_ = false;
}

void ColumnSegment::Append(const std::string& lexeme) {
  const size_t row = codes_.size();
  codes_.push_back(Encode(lexeme, row));
}

void ColumnSegment::AppendNull() { codes_.push_back(kNullCode); }

void ColumnSegment::Set(size_t row, const std::string& lexeme) {
  variant_rows_.erase(row);  // the overwritten cell's spelling is gone
  codes_[row] = Encode(lexeme, row);
  sorted_ = false;
}

void ColumnSegment::SetNull(size_t row) {
  variant_rows_.erase(row);
  codes_[row] = kNullCode;
  sorted_ = false;
}

void ColumnSegment::Resize(size_t n) {
  if (n < codes_.size()) {
    sorted_ = false;  // truncation can orphan entries
    for (auto it = variant_rows_.begin(); it != variant_rows_.end();) {
      it = it->first >= n ? variant_rows_.erase(it) : std::next(it);
    }
  }
  codes_.resize(n, kNullCode);
}

ColumnSegment ColumnSegment::Head(size_t n) const {
  ColumnSegment head = *this;
  head.Resize(std::min(n, codes_.size()));
  head.sorted_ = false;  // truncation may orphan dictionary entries
  return head;
}

size_t ColumnSegment::DistinctCount() const {
  std::vector<uint8_t> seen(dictionary_.size(), 0);
  size_t distinct = 0;
  for (uint32_t code : codes_) {
    if (code == kNullCode || seen[code] != 0) continue;
    seen[code] = 1;
    ++distinct;
  }
  return distinct;
}

ColumnSegment::NormalizationPlan ColumnSegment::PlanNormalization() const {
  NormalizationPlan plan;
  std::vector<uint8_t> referenced(dictionary_.size(), 0);
  for (uint32_t code : codes_) {
    if (code != kNullCode) referenced[code] = 1;
  }
  plan.slots.reserve(dictionary_.size());
  for (uint32_t i = 0; i < dictionary_.size(); ++i) {
    if (referenced[i] != 0) plan.slots.push_back(i);
  }
  std::sort(plan.slots.begin(), plan.slots.end(), [&](uint32_t a, uint32_t b) {
    return TypedLess(type_, dictionary_[a], dictionary_[b]);
  });
  plan.old_to_new.assign(dictionary_.size(), kNullCode);
  for (uint32_t new_code = 0; new_code < plan.slots.size(); ++new_code) {
    plan.old_to_new[plan.slots[new_code]] = new_code;
  }
  return plan;
}

void ColumnSegment::Normalize() {
  const NormalizationPlan plan = PlanNormalization();
  std::vector<std::string> sorted_dictionary;
  sorted_dictionary.reserve(plan.slots.size());
  for (uint32_t old_code : plan.slots) {
    sorted_dictionary.push_back(std::move(dictionary_[old_code]));
  }
  dictionary_ = std::move(sorted_dictionary);
  for (uint32_t& code : codes_) {
    if (code != kNullCode) code = plan.old_to_new[code];
  }
  // Re-key the raw spellings; overrides of dropped (unreferenced) codes go
  // with their entries.
  std::unordered_map<uint32_t, std::string> remapped;
  remapped.reserve(raw_spelling_.size());
  for (auto& [old_code, spelling] : raw_spelling_) {
    const uint32_t new_code = plan.old_to_new[old_code];
    if (new_code != kNullCode) remapped.emplace(new_code, std::move(spelling));
  }
  raw_spelling_ = std::move(remapped);
  RebuildEncodeIndex();
  sorted_ = true;
}

std::vector<ColumnSegment::RawSpelling> ColumnSegment::SortedRawSpellings()
    const {
  std::vector<RawSpelling> spellings(raw_spelling_.begin(),
                                     raw_spelling_.end());
  std::sort(spellings.begin(), spellings.end(),
            [](const RawSpelling& a, const RawSpelling& b) {
              return a.first < b.first;
            });
  return spellings;
}

std::vector<ColumnSegment::VariantRow> ColumnSegment::SortedVariantRows()
    const {
  std::vector<VariantRow> variants(variant_rows_.begin(), variant_rows_.end());
  std::sort(variants.begin(), variants.end(),
            [](const VariantRow& a, const VariantRow& b) {
              return a.first < b.first;
            });
  return variants;
}

uint64_t ColumnSegment::FoldFingerprint(uint64_t h) const {
  h = FoldValue(h, static_cast<uint64_t>(type_));
  h = FoldValue(h, dictionary_.size());
  for (const std::string& entry : dictionary_) {
    h = FoldValue(h, entry.size());
    h = FoldBytes(h, entry.data(), entry.size());
  }
  h = FoldValue(h, codes_.size());
  h = FoldBytes(h, codes_.data(), codes_.size() * sizeof(uint32_t));
  // Raw spellings are logical state (they decide identity after a future
  // widening to string), so they are part of the fingerprint.
  h = FoldValue(h, raw_spelling_.size());
  for (const RawSpelling& spelling : SortedRawSpellings()) {
    h = FoldValue(h, spelling.first);
    h = FoldValue(h, spelling.second.size());
    h = FoldBytes(h, spelling.second.data(), spelling.second.size());
  }
  h = FoldValue(h, variant_rows_.size());
  for (const VariantRow& variant : SortedVariantRows()) {
    h = FoldValue(h, variant.first);
    h = FoldValue(h, variant.second.size());
    h = FoldBytes(h, variant.second.data(), variant.second.size());
  }
  return h;
}

size_t ColumnSegment::MemoryBytes() const {
  size_t bytes = codes_.capacity() * sizeof(uint32_t);
  for (const std::string& entry : dictionary_) {
    bytes += sizeof(std::string) + entry.capacity();
  }
  // The encode index roughly doubles the dictionary footprint.
  bytes += encode_.size() * (sizeof(std::string) + sizeof(uint32_t) * 2);
  for (const auto& [code, spelling] : raw_spelling_) {
    bytes += sizeof(uint32_t) + sizeof(std::string) + spelling.capacity();
  }
  for (const auto& [row, raw] : variant_rows_) {
    bytes += sizeof(uint64_t) + sizeof(std::string) + raw.capacity();
  }
  return bytes;
}

void ColumnSegment::CheckRawSpellingInvariants() const {
  if (type_ != ColumnType::kInt && type_ != ColumnType::kDouble) {
    HYFD_CHECK(raw_spelling_.empty() && variant_rows_.empty(),
               "ColumnSegment: raw spellings outside a numeric column");
    return;
  }
  for (const auto& [code, spelling] : raw_spelling_) {
    HYFD_CHECK(code < dictionary_.size(),
               "ColumnSegment: raw-spelling code out of dictionary range");
    HYFD_CHECK(spelling != dictionary_[code],
               "ColumnSegment: raw spelling equals the canonical form");
    HYFD_CHECK(LexemeType(spelling) != ColumnType::kString &&
                   CanonicalForm(type_, spelling) == dictionary_[code],
               "ColumnSegment: raw spelling does not canonicalize to its "
               "dictionary entry");
  }
  for (const auto& [row, raw] : variant_rows_) {
    HYFD_CHECK(row < codes_.size(),
               "ColumnSegment: variant row out of range");
    const uint32_t code = codes_[row];
    HYFD_CHECK(code != kNullCode, "ColumnSegment: variant row is NULL");
    HYFD_CHECK(code < dictionary_.size(),
               "ColumnSegment: variant row's code out of dictionary range");
    HYFD_CHECK(raw != CreatingSpelling(code),
               "ColumnSegment: variant row equals its code's raw spelling");
    HYFD_CHECK(LexemeType(raw) != ColumnType::kString &&
                   CanonicalForm(type_, raw) == dictionary_[code],
               "ColumnSegment: variant row does not canonicalize to its "
               "code's dictionary entry");
  }
}

void ColumnSegment::CheckInvariants() const {
  HYFD_CHECK(dictionary_.size() < kNullCode,
             "ColumnSegment: dictionary size collides with the NULL code");
  CheckRawSpellingInvariants();
  HYFD_CHECK(encode_.empty() || encode_.size() == dictionary_.size(),
             "ColumnSegment: encode index size disagrees with the dictionary");
  for (uint32_t i = 0; i < dictionary_.size(); ++i) {
    const std::string& entry = dictionary_[i];
    HYFD_CHECK(CanonicalForm(type_, entry) == entry,
               "ColumnSegment: dictionary entry is not in canonical form");
    if (!encode_.empty()) {
      auto it = encode_.find(entry);
      HYFD_CHECK(it != encode_.end() && it->second == i,
                 "ColumnSegment: encode index does not map entry to its code");
    }
  }
  for (uint32_t code : codes_) {
    HYFD_CHECK(code == kNullCode || code < dictionary_.size(),
               "ColumnSegment: code out of dictionary range");
  }
  if (sorted_) {
    for (size_t i = 1; i < dictionary_.size(); ++i) {
      HYFD_CHECK(TypedLess(type_, dictionary_[i - 1], dictionary_[i]),
                 "ColumnSegment: sorted segment has an unsorted or duplicate "
                 "dictionary");
    }
    std::vector<uint8_t> referenced(dictionary_.size(), 0);
    for (uint32_t code : codes_) {
      if (code != kNullCode) referenced[code] = 1;
    }
    for (size_t i = 0; i < referenced.size(); ++i) {
      HYFD_CHECK(referenced[i] != 0,
                 "ColumnSegment: sorted segment has an unreferenced "
                 "dictionary entry");
    }
  }
}

}  // namespace hyfd

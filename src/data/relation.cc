#include "data/relation.h"

#include <algorithm>

#include "util/check.h"

namespace hyfd {
namespace {

/// Storage format version folded into ContentFingerprint(): a format bump
/// must invalidate every fingerprint-keyed consumer (PliCache bindings) even
/// if the logical data is unchanged. Kept in lockstep with
/// table_io.h's kTableFormatVersion by a static_assert there.
constexpr uint64_t kStorageFingerprintVersion = 2;

}  // namespace

Relation Relation::FromRows(
    Schema schema,
    const std::vector<std::vector<std::optional<std::string>>>& rows) {
  Relation r(std::move(schema));
  for (const auto& row : rows) r.AppendRow(row);
  return r;
}

Relation Relation::FromStringRows(
    Schema schema, const std::vector<std::vector<std::string>>& rows) {
  Relation r(std::move(schema));
  std::vector<std::optional<std::string>> tmp;
  for (const auto& row : rows) {
    tmp.assign(row.begin(), row.end());
    r.AppendRow(tmp);
  }
  return r;
}

Relation Relation::FromSegments(Schema schema,
                                std::vector<ColumnSegment> segments) {
  HYFD_CHECK(segments.size() == static_cast<size_t>(schema.num_columns()),
             "Relation::FromSegments: segment count disagrees with the schema");
  for (const ColumnSegment& segment : segments) {
    HYFD_CHECK(segment.size() == segments[0].size(),
               "Relation::FromSegments: ragged segments");
  }
  Relation r;
  r.schema_ = std::move(schema);
  r.segments_ = std::move(segments);
  return r;
}

void Relation::AppendRow(const std::vector<std::optional<std::string>>& row) {
  HYFD_CHECK(row.size() == static_cast<size_t>(num_columns()),
             "Relation::AppendRow: row width does not match the schema");
  for (size_t c = 0; c < row.size(); ++c) {
    if (row[c].has_value()) {
      segments_[c].Append(*row[c]);
    } else {
      segments_[c].AppendNull();
    }
  }
  ++version_;
}

void Relation::SetValue(size_t row, int col, const std::string& value) {
  HYFD_DCHECK(col >= 0 && col < num_columns() && row < num_rows(),
              "Relation::SetValue: cell out of range");
  segments_[static_cast<size_t>(col)].Set(row, value);
  ++version_;
}

void Relation::SetNull(size_t row, int col) {
  HYFD_DCHECK(col >= 0 && col < num_columns() && row < num_rows(),
              "Relation::SetNull: cell out of range");
  segments_[static_cast<size_t>(col)].SetNull(row);
  ++version_;
}

void Relation::Resize(size_t n) {
  for (ColumnSegment& segment : segments_) segment.Resize(n);
  ++version_;
}

Relation Relation::HeadRows(size_t n) const {
  Relation r(schema_);
  for (size_t c = 0; c < segments_.size(); ++c) {
    r.segments_[c] = segments_[c].Head(n);
  }
  return r;
}

Relation Relation::HeadColumns(int k) const {
  k = std::min(k, num_columns());
  std::vector<std::string> names(schema_.names().begin(),
                                 schema_.names().begin() + k);
  Relation r{Schema(std::move(names))};
  for (int c = 0; c < k; ++c) {
    r.segments_[static_cast<size_t>(c)] = segments_[static_cast<size_t>(c)];
  }
  return r;
}

size_t Relation::DistinctCount(int col) const {
  return segments_[static_cast<size_t>(col)].DistinctCount();
}

void Relation::Normalize() {
  for (ColumnSegment& segment : segments_) segment.Normalize();
  ++version_;
}

uint64_t Relation::ContentFingerprint() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto fold = [&h](uint64_t v) {
    for (size_t i = 0; i < sizeof(v); ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  auto fold_string = [&](const std::string& s) {
    fold(s.size());
    for (unsigned char ch : s) {
      h ^= ch;
      h *= 1099511628211ull;
    }
  };
  fold(kStorageFingerprintVersion);
  fold(static_cast<uint64_t>(num_columns()));
  fold(num_rows());
  for (const std::string& name : schema_.names()) fold_string(name);
  for (const ColumnSegment& segment : segments_) {
    h = segment.FoldFingerprint(h);
  }
  return h;
}

void Relation::CheckInvariants() const {
  HYFD_CHECK(segments_.size() == static_cast<size_t>(schema_.num_columns()),
             "Relation: column count disagrees with the schema");
  const size_t rows = num_rows();
  for (const ColumnSegment& segment : segments_) {
    HYFD_CHECK(segment.size() == rows, "Relation: ragged value column");
    segment.CheckInvariants();
  }
}

}  // namespace hyfd

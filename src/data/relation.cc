#include "data/relation.h"

#include <unordered_set>

#include "util/check.h"

namespace hyfd {

Relation Relation::FromRows(
    Schema schema,
    const std::vector<std::vector<std::optional<std::string>>>& rows) {
  Relation r(std::move(schema));
  for (const auto& row : rows) r.AppendRow(row);
  return r;
}

Relation Relation::FromStringRows(
    Schema schema, const std::vector<std::vector<std::string>>& rows) {
  Relation r(std::move(schema));
  std::vector<std::optional<std::string>> tmp;
  for (const auto& row : rows) {
    tmp.assign(row.begin(), row.end());
    r.AppendRow(tmp);
  }
  return r;
}

void Relation::AppendRow(const std::vector<std::optional<std::string>>& row) {
  HYFD_CHECK(row.size() == static_cast<size_t>(num_columns()),
             "Relation::AppendRow: row width does not match the schema");
  for (size_t c = 0; c < row.size(); ++c) {
    if (row[c].has_value()) {
      columns_[c].push_back(*row[c]);
      nulls_[c].push_back(0);
    } else {
      columns_[c].emplace_back();
      nulls_[c].push_back(1);
    }
  }
  ++version_;
}

void Relation::SetValue(size_t row, int col, std::string value) {
  HYFD_DCHECK(col >= 0 && col < num_columns() && row < num_rows(),
              "Relation::SetValue: cell out of range");
  columns_[static_cast<size_t>(col)][row] = std::move(value);
  nulls_[static_cast<size_t>(col)][row] = 0;
  ++version_;
}

void Relation::SetNull(size_t row, int col) {
  HYFD_DCHECK(col >= 0 && col < num_columns() && row < num_rows(),
              "Relation::SetNull: cell out of range");
  columns_[static_cast<size_t>(col)][row].clear();
  nulls_[static_cast<size_t>(col)][row] = 1;
  ++version_;
}

void Relation::Resize(size_t n) {
  for (int c = 0; c < num_columns(); ++c) {
    columns_[static_cast<size_t>(c)].resize(n);
    nulls_[static_cast<size_t>(c)].resize(n, 1);
  }
  ++version_;
}

Relation Relation::HeadRows(size_t n) const {
  Relation r(schema_);
  size_t keep = std::min(n, num_rows());
  for (size_t c = 0; c < columns_.size(); ++c) {
    r.columns_[c].assign(columns_[c].begin(), columns_[c].begin() + keep);
    r.nulls_[c].assign(nulls_[c].begin(), nulls_[c].begin() + keep);
  }
  return r;
}

Relation Relation::HeadColumns(int k) const {
  k = std::min(k, num_columns());
  std::vector<std::string> names(schema_.names().begin(),
                                 schema_.names().begin() + k);
  Relation r{Schema(std::move(names))};
  for (int c = 0; c < k; ++c) {
    r.columns_[static_cast<size_t>(c)] = columns_[static_cast<size_t>(c)];
    r.nulls_[static_cast<size_t>(c)] = nulls_[static_cast<size_t>(c)];
  }
  return r;
}

void Relation::CheckInvariants() const {
  HYFD_CHECK(columns_.size() == static_cast<size_t>(schema_.num_columns()),
             "Relation: column count disagrees with the schema");
  HYFD_CHECK(nulls_.size() == columns_.size(),
             "Relation: null-flag column count disagrees with value columns");
  const size_t rows = num_rows();
  for (size_t c = 0; c < columns_.size(); ++c) {
    HYFD_CHECK(columns_[c].size() == rows, "Relation: ragged value column");
    HYFD_CHECK(nulls_[c].size() == rows, "Relation: ragged null-flag column");
    for (size_t r = 0; r < rows; ++r) {
      HYFD_CHECK(nulls_[c][r] <= 1, "Relation: null flag outside {0,1}");
      HYFD_CHECK(nulls_[c][r] == 0 || columns_[c][r].empty(),
                 "Relation: NULL cell carries a non-empty value");
    }
  }
}

size_t Relation::DistinctCount(int col) const {
  std::unordered_set<std::string> seen;
  const auto& values = columns_[static_cast<size_t>(col)];
  const auto& nulls = nulls_[static_cast<size_t>(col)];
  for (size_t r = 0; r < values.size(); ++r) {
    if (!nulls[r]) seen.insert(values[r]);
  }
  return seen.size();
}

}  // namespace hyfd

#ifndef HYFD_DATA_RELATION_H_
#define HYFD_DATA_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/schema.h"

namespace hyfd {

/// A relational instance: a column-major table of string values with NULLs.
///
/// The Relation is the sole input to every discovery algorithm in this
/// library. Values are opaque strings — FD discovery only needs value
/// *identity* per column (paper §4: "The values itself, however, must not be
/// known"), which the Preprocessor turns into position list indexes.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema)
      : schema_(std::move(schema)),
        columns_(static_cast<size_t>(schema_.num_columns())),
        nulls_(static_cast<size_t>(schema_.num_columns())) {}

  /// Builds a relation row-wise; `std::nullopt` cells become NULL.
  static Relation FromRows(
      Schema schema,
      const std::vector<std::vector<std::optional<std::string>>>& rows);

  /// Convenience builder for tests: all cells non-NULL.
  static Relation FromStringRows(Schema schema,
                                 const std::vector<std::vector<std::string>>& rows);

  const Schema& schema() const { return schema_; }
  int num_columns() const { return schema_.num_columns(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  const std::string& Value(size_t row, int col) const {
    return columns_[static_cast<size_t>(col)][row];
  }
  bool IsNull(size_t row, int col) const {
    return nulls_[static_cast<size_t>(col)][row] != 0;
  }

  /// Appends one row; the row size must match the schema.
  void AppendRow(const std::vector<std::optional<std::string>>& row);

  /// Mutation counter: bumped by every AppendRow/SetValue/SetNull/Resize.
  /// Derived state (PLIs, compressed records) records the version it was
  /// built from, so using it against a since-mutated relation throws instead
  /// of silently reading stale partitions (see
  /// PreprocessedData::CheckSyncedWith).
  uint64_t version() const { return version_; }

  /// Direct cell write used by the generators (rows must exist already).
  void SetValue(size_t row, int col, std::string value);
  void SetNull(size_t row, int col);

  /// Appends `n` empty (all-NULL) rows.
  void Resize(size_t n);

  /// Returns a copy restricted to the first `n` rows.
  Relation HeadRows(size_t n) const;
  /// Returns a copy restricted to the first `k` columns.
  Relation HeadColumns(int k) const;

  /// Number of distinct non-NULL values in column `col` (for stats/tests).
  size_t DistinctCount(int col) const;

  /// Deep structural audit: schema/column/null-flag arity agreement,
  /// rectangular columns, null flags in {0,1}, and the NULL representation
  /// invariant (a NULL cell stores the empty string). Throws
  /// ContractViolation on the first violation. Invoked automatically at the
  /// discovery seams in audit builds (-DHYFD_AUDIT=ON); callable from any
  /// build.
  void CheckInvariants() const;

 private:
  Schema schema_;
  std::vector<std::vector<std::string>> columns_;
  std::vector<std::vector<uint8_t>> nulls_;
  uint64_t version_ = 0;
};

}  // namespace hyfd

#endif  // HYFD_DATA_RELATION_H_

#ifndef HYFD_DATA_RELATION_H_
#define HYFD_DATA_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/column_segment.h"
#include "data/schema.h"

namespace hyfd {

/// A relational instance: a column-major table of dictionary-encoded, typed
/// column segments with NULLs.
///
/// The Relation is the sole input to every discovery algorithm in this
/// library. FD discovery only needs value *identity* per column (paper §4:
/// "The values itself, however, must not be known"), and the segments make
/// that identity explicit: each column stores a dictionary of canonical
/// lexemes plus one dense u32 code per row, so PLI construction is a
/// counting pass over codes and two cells are equal iff their codes are.
/// `Value()` renders the canonical lexeme (typed columns compare by value,
/// so "07" and "7" in an int column are one value rendered "7").
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema)
      : schema_(std::move(schema)),
        segments_(static_cast<size_t>(schema_.num_columns())) {}

  /// Builds a relation row-wise; `std::nullopt` cells become NULL.
  static Relation FromRows(
      Schema schema,
      const std::vector<std::vector<std::optional<std::string>>>& rows);

  /// Convenience builder for tests: all cells non-NULL.
  static Relation FromStringRows(Schema schema,
                                 const std::vector<std::vector<std::string>>& rows);

  /// Reassembles a relation from loaded segments (the binary table reader).
  /// Throws ContractViolation on schema/segment arity or length mismatch.
  static Relation FromSegments(Schema schema,
                               std::vector<ColumnSegment> segments);

  const Schema& schema() const { return schema_; }
  int num_columns() const { return schema_.num_columns(); }
  size_t num_rows() const { return segments_.empty() ? 0 : segments_[0].size(); }

  const std::string& Value(size_t row, int col) const {
    return segments_[static_cast<size_t>(col)].Value(row);
  }
  bool IsNull(size_t row, int col) const {
    return segments_[static_cast<size_t>(col)].IsNull(row);
  }

  /// The dictionary-encoded segment backing column `col` — codes,
  /// dictionary, and inferred type. PLI builders and the incremental session
  /// work on codes directly instead of re-hashing strings.
  const ColumnSegment& segment(int col) const {
    return segments_[static_cast<size_t>(col)];
  }

  /// Appends one row; the row size must match the schema.
  void AppendRow(const std::vector<std::optional<std::string>>& row);

  /// Mutation counter: bumped by every AppendRow/SetValue/SetNull/Resize/
  /// Normalize. Derived state (PLIs, compressed records) records the version
  /// it was built from, so using it against a since-mutated relation throws
  /// instead of silently reading stale partitions (see
  /// PreprocessedData::CheckSyncedWith).
  uint64_t version() const { return version_; }

  /// Sum of the segments' identity epochs: grows (monotonically) whenever an
  /// append widened a numeric column to string and split codes of existing
  /// rows. Unlike version(), which bumps on every mutation, an epoch change
  /// means value identity changed *retroactively* — code-keyed derived state
  /// must be rebuilt, not grown (see IncrementalHyFd::ApplyBatch).
  uint64_t IdentityEpoch() const {
    uint64_t epoch = 0;
    for (const ColumnSegment& segment : segments_) {
      epoch += segment.identity_epoch();
    }
    return epoch;
  }

  /// Direct cell write used by the generators (rows must exist already).
  void SetValue(size_t row, int col, const std::string& value);
  void SetNull(size_t row, int col);

  /// Appends `n` empty (all-NULL) rows.
  void Resize(size_t n);

  /// Returns a copy restricted to the first `n` rows.
  Relation HeadRows(size_t n) const;
  /// Returns a copy restricted to the first `k` columns.
  Relation HeadColumns(int k) const;

  /// Number of distinct non-NULL values in column `col` (for stats/tests).
  size_t DistinctCount(int col) const;

  /// Re-sorts every column dictionary into its canonical typed layout (the
  /// on-disk binary layout) and remaps the codes. Logical content is
  /// unchanged, but the physical encoding mutates, so the version is bumped
  /// like any other mutation.
  void Normalize();

  /// FNV-1a fingerprint over the relation's logical content *and* physical
  /// encoding contract: binary storage format version, schema names, column
  /// types, dictionaries, and code vectors. Two relations share a
  /// fingerprint only if they are byte-identical at the storage layer, so a
  /// binary-cache reload of a changed CSV can never alias the old data even
  /// when the cluster structure happens to match (see PliCache::Rebind).
  uint64_t ContentFingerprint() const;

  /// Deep structural audit: schema/segment arity agreement, rectangular
  /// columns, and every segment's own invariants (codes in dictionary range
  /// or the NULL sentinel, canonical unique dictionaries, sorted layout
  /// where claimed). Throws ContractViolation on the first violation.
  /// Invoked automatically at the discovery seams in audit builds
  /// (-DHYFD_AUDIT=ON); callable from any build.
  void CheckInvariants() const;

 private:
  Schema schema_;
  std::vector<ColumnSegment> segments_;
  uint64_t version_ = 0;
};

}  // namespace hyfd

#endif  // HYFD_DATA_RELATION_H_

#ifndef HYFD_DATA_COLUMN_SEGMENT_H_
#define HYFD_DATA_COLUMN_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace hyfd {

/// Inferred value type of a column. The lattice is
///
///     kInt ⊂ kDouble ⊂ kString      kDate ⊂ kString
///
/// and a column's type is the join of its non-NULL lexemes' narrowest types:
/// it only ever widens as values are appended, never narrows. Typed columns
/// compare by *value*, not lexeme — "07" and "7" share one dictionary code in
/// an int column — which is the identity FD discovery actually wants for
/// numeric data (and what type-aware error/ranking extensions assume).
enum class ColumnType : uint8_t {
  kString = 0,
  kInt = 1,     ///< int64 lexemes within ±2^53 (so widening to double is exact)
  kDouble = 2,  ///< finite doubles; canonical form is the shortest round-trip
  kDate = 3,    ///< strict ISO YYYY-MM-DD
};

const char* ColumnTypeName(ColumnType type);

/// Narrowest type of a single lexeme. Integers outside ±2^53 classify as
/// kString — whether they still fit int64 or overflow it — because their
/// exactness would not survive an int→double widening (and distinct >64-bit
/// ids must never share a lossy double rendering).
ColumnType LexemeType(const std::string& lexeme);

/// Join of two types in the widening lattice (kInt ∪ kDate = kString, ...).
ColumnType WidenType(ColumnType a, ColumnType b);

/// Canonical dictionary form of `lexeme` under `type`: "007" → "7" (int),
/// "2.50" → "2.5" and "-0.0" → "0" (double), identity for strings and dates.
/// `lexeme` must be of `type` or a narrowing of it.
std::string CanonicalForm(ColumnType type, const std::string& lexeme);

/// Dictionary order of canonical forms under `type`: numeric for kInt and
/// kDouble, lexicographic (= chronological for ISO dates) otherwise.
bool TypedLess(ColumnType type, const std::string& a, const std::string& b);

/// Code stored for a NULL cell. NULLs never enter the dictionary, so every
/// dictionary must stay smaller than this sentinel.
inline constexpr uint32_t kNullCode = 0xFFFFFFFFu;

/// One dictionary-encoded column: a dictionary of canonical lexemes plus one
/// dense u32 code per row (kNullCode for NULL cells), in the spirit of
/// hyrise's dictionary segments.
///
/// Codes are assigned in first-occurrence order while a column is being
/// built, which keeps Append() O(1) amortized; `Normalize()` (or the binary
/// table writer, which normalizes on the fly) re-sorts the dictionary into
/// typed order, drops unreferenced entries, and remaps the codes — the
/// canonical layout the on-disk format stores and `sorted()` advertises.
///
/// Within one segment, value identity and code identity coincide: two cells
/// are equal iff their codes are equal. Value identity is defined by the
/// column's *final* type and is independent of append order: while a column
/// is numeric, raw spellings that differ from the canonical rendering are
/// retained on the side ("07" for the int value 7), so a later widening to
/// kString can re-derive lexeme identity and split values that were merged
/// numerically. Numeric widenings (int → double) never merge or renumber
/// codes; a widening to kString may *split* codes of rows whose raw spelling
/// had been numerically merged — every such split bumps identity_epoch(), so
/// derived state keyed on codes (PLIs, incremental column indexes) can
/// detect the retroactive change and rebuild.
class ColumnSegment {
 public:
  ColumnSegment() = default;

  /// A (code → raw spelling) override retained while the column is numeric:
  /// the spelling that created `code` when it differs from the canonical
  /// rendering (e.g. {0, "07"} when dictionary[0] == "7").
  using RawSpelling = std::pair<uint32_t, std::string>;
  /// A (row → raw lexeme) record for a row whose spelling differs from its
  /// code's creating spelling — the rows a string widening splits off.
  using VariantRow = std::pair<uint64_t, std::string>;

  /// Rebuilds a segment from its serialized parts (the binary table loader).
  /// Validates everything the format promises — canonical forms, typed
  /// sorted-unique dictionary, codes in range, well-formed raw-spelling
  /// state — and throws ContractViolation on the first violation.
  static ColumnSegment FromParts(ColumnType type,
                                 std::vector<std::string> dictionary,
                                 std::vector<uint32_t> codes,
                                 std::vector<RawSpelling> raw_spellings = {},
                                 std::vector<VariantRow> variant_rows = {});

  size_t size() const { return codes_.size(); }
  bool IsNull(size_t row) const { return codes_[row] == kNullCode; }

  /// Canonical lexeme of row `row`; the empty string for NULL cells. The
  /// reference is invalidated by any mutation of the segment.
  const std::string& Value(size_t row) const {
    const uint32_t code = codes_[row];
    return code == kNullCode ? EmptyValue() : dictionary_[code];
  }

  uint32_t code(size_t row) const { return codes_[row]; }
  const std::vector<uint32_t>& codes() const { return codes_; }
  const std::vector<std::string>& dictionary() const { return dictionary_; }
  ColumnType type() const { return type_; }
  /// True when the dictionary is in canonical layout: typed sorted order
  /// with every entry referenced by at least one code (the on-disk layout).
  bool sorted() const { return sorted_; }

  /// Bumped every time a widening to kString rewrites codes of existing rows
  /// (raw spellings that had been numerically merged split apart). Derived
  /// state keyed on codes must treat an epoch change as a full invalidation.
  uint64_t identity_epoch() const { return identity_epoch_; }

  /// Raw-spelling state in deterministic (sorted-by-key) order, for the
  /// binary table writer and the fingerprint. Empty unless the column is
  /// currently numeric and a non-canonical spelling was appended.
  std::vector<RawSpelling> SortedRawSpellings() const;
  std::vector<VariantRow> SortedVariantRows() const;

  /// Appends one cell.
  void Append(const std::string& lexeme);
  void AppendNull();

  /// Overwrites one cell (the generators' build path). Overwrites can orphan
  /// the previous value's dictionary entry, so they drop the canonical-layout
  /// claim (`sorted()` becomes false) until the next Normalize().
  void Set(size_t row, const std::string& lexeme);
  void SetNull(size_t row);

  /// Grows (new cells NULL) or truncates to `n` rows.
  void Resize(size_t n);

  /// Copy of the first `n` rows (dictionary kept as-is, possibly with
  /// entries the retained codes no longer reference).
  ColumnSegment Head(size_t n) const;

  /// Number of distinct non-NULL values actually referenced by the codes.
  size_t DistinctCount() const;

  /// Re-sorts the dictionary into typed order, drops unreferenced entries,
  /// and remaps every code to the canonical layout (`sorted()` afterwards).
  void Normalize();

  /// The permutation Normalize() would apply: `slots[new_code]` is the old
  /// code, `old_to_new[old_code]` the new one (kNullCode for unreferenced
  /// entries). Lets the binary writer serialize a const segment in canonical
  /// layout without mutating it.
  struct NormalizationPlan {
    std::vector<uint32_t> slots;
    std::vector<uint32_t> old_to_new;
  };
  NormalizationPlan PlanNormalization() const;

  /// Folds the segment's logical content — type, dictionary, codes — into a
  /// running FNV-1a hash (Relation::ContentFingerprint).
  uint64_t FoldFingerprint(uint64_t h) const;

  size_t MemoryBytes() const;

  /// Deep structural audit: every code in range or kNullCode, dictionary
  /// entries unique and canonical under the column type, the encode index
  /// (when built — it is lazy after FromParts) a bijection onto the
  /// dictionary, and — when sorted() — typed sorted order with no
  /// unreferenced entries. Throws ContractViolation on the first violation.
  void CheckInvariants() const;

  /// Test-only corruption hooks proving the audit negatives actually fire.
  /// Never called by library code.
  void CorruptCodeForTest(size_t row, uint32_t code) { codes_[row] = code; }
  void CorruptDictionaryForTest(size_t slot, std::string lexeme) {
    dictionary_[slot] = std::move(lexeme);
  }
  void MarkSortedForTest() { sorted_ = true; }

 private:
  static const std::string& EmptyValue();

  /// Encodes the lexeme destined for `row`, widening the column type first
  /// if needed; returns the (possibly fresh) dictionary code. `row` lets the
  /// segment remember raw spellings that a later string widening must split.
  uint32_t Encode(const std::string& lexeme, size_t row);
  /// Rebuilds the canonical → code index from the dictionary. The index is
  /// built lazily: FromParts() leaves it empty (read-only loads never pay for
  /// it) and the first Encode() afterwards restores it.
  void RebuildEncodeIndex();
  /// Re-renders every dictionary entry under a widened numeric type (codes
  /// untouched: exact ints map to distinct doubles), or — when `wider` is
  /// kString and the column was numeric — restores each code's creating raw
  /// spelling and splits variant rows onto their own codes (lexeme identity).
  void Widen(ColumnType wider);
  /// The kString arm of Widen() for a previously numeric column.
  void WidenNumericToString();
  /// The raw spelling that created `code` (the dictionary entry itself when
  /// no override is recorded).
  const std::string& CreatingSpelling(uint32_t code) const;
  /// Shared FromParts/CheckInvariants validation of the raw-spelling state.
  void CheckRawSpellingInvariants() const;

  ColumnType type_ = ColumnType::kString;
  bool has_values_ = false;  ///< type_ is meaningless until the first non-NULL
  bool sorted_ = true;       ///< vacuously canonical while empty
  std::vector<std::string> dictionary_;
  std::vector<uint32_t> codes_;
  std::unordered_map<std::string, uint32_t> encode_;  ///< canonical → code
                                                      ///< (lazy; may be empty)
  /// Raw spellings retained while the column is numeric (empty otherwise):
  /// the spelling that created a code when it differs from the canonical
  /// rendering, and the rows whose spelling differs from their code's
  /// creating spelling. Together they let WidenNumericToString() recover
  /// order-independent lexeme identity.
  std::unordered_map<uint32_t, std::string> raw_spelling_;
  std::unordered_map<uint64_t, std::string> variant_rows_;
  uint64_t identity_epoch_ = 0;
};

}  // namespace hyfd

#endif  // HYFD_DATA_COLUMN_SEGMENT_H_

#ifndef HYFD_DATA_COLUMN_SEGMENT_H_
#define HYFD_DATA_COLUMN_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace hyfd {

/// Inferred value type of a column. The lattice is
///
///     kInt ⊂ kDouble ⊂ kString      kDate ⊂ kString
///
/// and a column's type is the join of its non-NULL lexemes' narrowest types:
/// it only ever widens as values are appended, never narrows. Typed columns
/// compare by *value*, not lexeme — "07" and "7" share one dictionary code in
/// an int column — which is the identity FD discovery actually wants for
/// numeric data (and what type-aware error/ranking extensions assume).
enum class ColumnType : uint8_t {
  kString = 0,
  kInt = 1,     ///< int64 lexemes within ±2^53 (so widening to double is exact)
  kDouble = 2,  ///< finite doubles; canonical form is the shortest round-trip
  kDate = 3,    ///< strict ISO YYYY-MM-DD
};

const char* ColumnTypeName(ColumnType type);

/// Narrowest type of a single lexeme. Integers outside ±2^53 classify as
/// kString (their exactness would not survive an int→double widening).
ColumnType LexemeType(const std::string& lexeme);

/// Join of two types in the widening lattice (kInt ∪ kDate = kString, ...).
ColumnType WidenType(ColumnType a, ColumnType b);

/// Canonical dictionary form of `lexeme` under `type`: "007" → "7" (int),
/// "2.50" → "2.5" and "-0.0" → "0" (double), identity for strings and dates.
/// `lexeme` must be of `type` or a narrowing of it.
std::string CanonicalForm(ColumnType type, const std::string& lexeme);

/// Dictionary order of canonical forms under `type`: numeric for kInt and
/// kDouble, lexicographic (= chronological for ISO dates) otherwise.
bool TypedLess(ColumnType type, const std::string& a, const std::string& b);

/// Code stored for a NULL cell. NULLs never enter the dictionary, so every
/// dictionary must stay smaller than this sentinel.
inline constexpr uint32_t kNullCode = 0xFFFFFFFFu;

/// One dictionary-encoded column: a dictionary of canonical lexemes plus one
/// dense u32 code per row (kNullCode for NULL cells), in the spirit of
/// hyrise's dictionary segments.
///
/// Codes are assigned in first-occurrence order while a column is being
/// built, which keeps Append() O(1) amortized; `Normalize()` (or the binary
/// table writer, which normalizes on the fly) re-sorts the dictionary into
/// typed order, drops unreferenced entries, and remaps the codes — the
/// canonical layout the on-disk format stores and `sorted()` advertises.
///
/// Within one segment, value identity and code identity coincide: two cells
/// are equal iff their codes are equal. Type widening re-renders the
/// dictionary's canonical forms but never merges or renumbers codes, so code
/// identity is stable across the segment's whole lifetime — derived state
/// (PLIs, incremental column indexes) may key on codes safely.
class ColumnSegment {
 public:
  ColumnSegment() = default;

  /// Rebuilds a segment from its serialized parts (the binary table loader).
  /// Validates everything the format promises — canonical forms, typed
  /// sorted-unique dictionary, codes in range — and throws ContractViolation
  /// on the first violation.
  static ColumnSegment FromParts(ColumnType type,
                                 std::vector<std::string> dictionary,
                                 std::vector<uint32_t> codes);

  size_t size() const { return codes_.size(); }
  bool IsNull(size_t row) const { return codes_[row] == kNullCode; }

  /// Canonical lexeme of row `row`; the empty string for NULL cells. The
  /// reference is invalidated by any mutation of the segment.
  const std::string& Value(size_t row) const {
    const uint32_t code = codes_[row];
    return code == kNullCode ? EmptyValue() : dictionary_[code];
  }

  uint32_t code(size_t row) const { return codes_[row]; }
  const std::vector<uint32_t>& codes() const { return codes_; }
  const std::vector<std::string>& dictionary() const { return dictionary_; }
  ColumnType type() const { return type_; }
  /// True when the dictionary is in canonical layout: typed sorted order
  /// with every entry referenced by at least one code (the on-disk layout).
  bool sorted() const { return sorted_; }

  /// Appends one cell.
  void Append(const std::string& lexeme);
  void AppendNull();

  /// Overwrites one cell (the generators' build path). Overwrites can orphan
  /// the previous value's dictionary entry, so they drop the canonical-layout
  /// claim (`sorted()` becomes false) until the next Normalize().
  void Set(size_t row, const std::string& lexeme);
  void SetNull(size_t row) {
    codes_[row] = kNullCode;
    sorted_ = false;
  }

  /// Grows (new cells NULL) or truncates to `n` rows.
  void Resize(size_t n) {
    if (n < codes_.size()) sorted_ = false;  // truncation can orphan entries
    codes_.resize(n, kNullCode);
  }

  /// Copy of the first `n` rows (dictionary kept as-is, possibly with
  /// entries the retained codes no longer reference).
  ColumnSegment Head(size_t n) const;

  /// Number of distinct non-NULL values actually referenced by the codes.
  size_t DistinctCount() const;

  /// Re-sorts the dictionary into typed order, drops unreferenced entries,
  /// and remaps every code to the canonical layout (`sorted()` afterwards).
  void Normalize();

  /// The permutation Normalize() would apply: `slots[new_code]` is the old
  /// code, `old_to_new[old_code]` the new one (kNullCode for unreferenced
  /// entries). Lets the binary writer serialize a const segment in canonical
  /// layout without mutating it.
  struct NormalizationPlan {
    std::vector<uint32_t> slots;
    std::vector<uint32_t> old_to_new;
  };
  NormalizationPlan PlanNormalization() const;

  /// Folds the segment's logical content — type, dictionary, codes — into a
  /// running FNV-1a hash (Relation::ContentFingerprint).
  uint64_t FoldFingerprint(uint64_t h) const;

  size_t MemoryBytes() const;

  /// Deep structural audit: every code in range or kNullCode, dictionary
  /// entries unique and canonical under the column type, the encode index
  /// (when built — it is lazy after FromParts) a bijection onto the
  /// dictionary, and — when sorted() — typed sorted order with no
  /// unreferenced entries. Throws ContractViolation on the first violation.
  void CheckInvariants() const;

  /// Test-only corruption hooks proving the audit negatives actually fire.
  /// Never called by library code.
  void CorruptCodeForTest(size_t row, uint32_t code) { codes_[row] = code; }
  void CorruptDictionaryForTest(size_t slot, std::string lexeme) {
    dictionary_[slot] = std::move(lexeme);
  }
  void MarkSortedForTest() { sorted_ = true; }

 private:
  static const std::string& EmptyValue();

  /// Encodes `lexeme`, widening the column type first if needed; returns the
  /// (possibly fresh) dictionary code.
  uint32_t Encode(const std::string& lexeme);
  /// Rebuilds the canonical → code index from the dictionary. The index is
  /// built lazily: FromParts() leaves it empty (read-only loads never pay for
  /// it) and the first Encode() afterwards restores it.
  void RebuildEncodeIndex();
  /// Re-renders every dictionary entry under a widened type and rebuilds the
  /// encode index. Codes are untouched (widening is injective: exact ints
  /// map to distinct doubles, and falling back to string keeps the already
  /// unique canonical lexemes).
  void Widen(ColumnType wider);

  ColumnType type_ = ColumnType::kString;
  bool has_values_ = false;  ///< type_ is meaningless until the first non-NULL
  bool sorted_ = true;       ///< vacuously canonical while empty
  std::vector<std::string> dictionary_;
  std::vector<uint32_t> codes_;
  std::unordered_map<std::string, uint32_t> encode_;  ///< canonical → code
                                                      ///< (lazy; may be empty)
};

}  // namespace hyfd

#endif  // HYFD_DATA_COLUMN_SEGMENT_H_

#include "data/csv.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/check.h"

namespace hyfd {
namespace {

struct RawField {
  std::string text;
  bool quoted = false;
};

/// Splits `text` into records of fields, honoring quotes.
std::vector<std::vector<RawField>> Tokenize(const std::string& text,
                                            const CsvOptions& opt) {
  std::vector<std::vector<RawField>> records;
  std::vector<RawField> record;
  RawField field;
  bool in_quotes = false;
  bool any_char_in_record = false;

  size_t i = 0;
  const size_t n = text.size();
  auto end_field = [&] {
    record.push_back(std::move(field));
    field = RawField{};
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
    any_char_in_record = false;
  };

  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == opt.quote) {
        if (i + 1 < n && text[i + 1] == opt.quote) {  // escaped quote
          field.text += opt.quote;
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.text += c;
      ++i;
      continue;
    }
    if (c == opt.quote && field.text.empty() && !field.quoted) {
      in_quotes = true;
      field.quoted = true;
      any_char_in_record = true;
      ++i;
      continue;
    }
    if (c == opt.delimiter) {
      end_field();
      any_char_in_record = true;
      ++i;
      continue;
    }
    if (c == '\r') {  // swallow; \r\n handled by \n branch
      ++i;
      any_char_in_record = true;
      continue;
    }
    if (c == '\n') {
      if (!record.empty() || any_char_in_record || !field.text.empty() ||
          field.quoted) {
        end_record();
      }
      ++i;
      continue;
    }
    field.text += c;
    any_char_in_record = true;
    ++i;
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quoted field");
  if (!record.empty() || !field.text.empty() || field.quoted ||
      any_char_in_record) {
    end_record();
  }
  return records;
}

}  // namespace

Relation ReadCsvString(const std::string& text, const CsvOptions& opt) {
  auto records = Tokenize(text, opt);
  if (records.empty()) return Relation{};

  size_t first_data = 0;
  Schema schema;
  if (opt.has_header) {
    std::vector<std::string> names;
    names.reserve(records[0].size());
    for (auto& f : records[0]) names.push_back(std::move(f.text));
    schema = Schema(std::move(names));
    first_data = 1;
  } else {
    schema = Schema::Generic(static_cast<int>(records[0].size()));
  }

  Relation relation(schema);
  std::vector<std::optional<std::string>> row;
  for (size_t r = first_data; r < records.size(); ++r) {
    if (static_cast<int>(records[r].size()) != schema.num_columns()) {
      throw std::runtime_error("csv: row " + std::to_string(r) + " has " +
                               std::to_string(records[r].size()) +
                               " fields, expected " +
                               std::to_string(schema.num_columns()));
    }
    row.clear();
    for (auto& f : records[r]) {
      if (!f.quoted && f.text == opt.null_token) {
        row.emplace_back(std::nullopt);
      } else {
        row.emplace_back(std::move(f.text));
      }
    }
    relation.AppendRow(row);
  }
  // Audit seam: a freshly parsed relation must satisfy the NULL-semantics
  // and rectangularity contracts before any algorithm consumes it.
  HYFD_AUDIT_ONLY(relation.CheckInvariants());
  return relation;
}

Relation ReadCsvFile(const std::string& path, const CsvOptions& opt) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csv: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), opt);
}

namespace {

void WriteField(std::ostream& os, const std::string& value, const CsvOptions& opt) {
  bool needs_quotes = value.find(opt.delimiter) != std::string::npos ||
                      value.find(opt.quote) != std::string::npos ||
                      value.find('\n') != std::string::npos ||
                      value.find('\r') != std::string::npos ||
                      (!opt.null_token.empty() && value == opt.null_token) ||
                      (opt.null_token.empty() && value.empty());
  if (!needs_quotes) {
    os << value;
    return;
  }
  os << opt.quote;
  for (char c : value) {
    if (c == opt.quote) os << opt.quote;
    os << c;
  }
  os << opt.quote;
}

}  // namespace

std::string WriteCsvString(const Relation& relation, const CsvOptions& opt) {
  std::ostringstream os;
  for (int c = 0; c < relation.num_columns(); ++c) {
    if (c > 0) os << opt.delimiter;
    WriteField(os, relation.schema().name(c), opt);
  }
  os << '\n';
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    for (int c = 0; c < relation.num_columns(); ++c) {
      if (c > 0) os << opt.delimiter;
      if (relation.IsNull(r, c)) {
        os << opt.null_token;
      } else {
        WriteField(os, relation.Value(r, c), opt);
      }
    }
    os << '\n';
  }
  return os.str();
}

void WriteCsvFile(const Relation& relation, const std::string& path,
                  const CsvOptions& opt) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("csv: cannot write " + path);
  out << WriteCsvString(relation, opt);
}

}  // namespace hyfd

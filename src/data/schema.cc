#include "data/schema.h"

namespace hyfd {

Schema Schema::Generic(int n) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string name(1, static_cast<char>('A' + i % 26));
    if (i >= 26) name += std::to_string(i / 26);
    names.push_back(std::move(name));
  }
  return Schema(std::move(names));
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace hyfd

#ifndef HYFD_DATA_TABLE_IO_H_
#define HYFD_DATA_TABLE_IO_H_

#include <cstdint>
#include <string>

#include "data/csv.h"
#include "data/relation.h"

namespace hyfd {

/// Versioned, checksummed binary table format — the parse-once answer to
/// CSV's parse-every-run cost (hyrise's binary table cache is the exemplar).
///
/// Layout (all integers little-endian):
///
///   offset  0  magic            "HYFDTBL\0" (8 bytes)
///   offset  8  format version   u32 (kTableFormatVersion)
///   offset 12  flags            u32 (reserved, 0)
///   offset 16  payload checksum u64 (FingerprintBytes of the payload)
///   offset 24  source fingerprint u64 (FingerprintBytes of the source CSV,
///                                      or a caller-chosen provenance key)
///   offset 32  payload:
///     u32 column count, u64 row count
///     per column: name (u32 length + bytes), type (u8),
///                 dictionary (u32 entry count, then u32 length + bytes each),
///                 raw spellings (u32 count, then u32 code + string each):
///                   the spelling that created a numeric code when it
///                   differs from the canonical form ("07" for entry "7"),
///                 variant rows (u64 count, then u64 row + string each):
///                   rows whose raw spelling was numerically merged onto
///                   another spelling's code
///     per column: codes (u32 × row count; kNullCode marks NULL)
///
/// The raw-spelling sections (new in format v2) preserve lexeme identity
/// across the cache: a numeric column widened to string by rows appended
/// *after* a reload must split exactly as the CSV-parsed relation would.
/// Both sections are empty for non-numeric columns and for numeric columns
/// whose spellings are all canonical — the overwhelmingly common case.
///
/// Dictionaries are stored in canonical layout — typed sorted order, every
/// entry referenced — which the writer produces on the fly (the in-memory
/// relation is not mutated) and the loader verifies. Any structural
/// violation — bad magic, unknown version, checksum mismatch, truncation,
/// trailing bytes, dictionary/code-count mismatch, out-of-range code,
/// non-canonical or unsorted dictionary, malformed raw spellings — throws
/// ContractViolation before any Relation is returned; a partially-parsed
/// table can never escape. Counts are bounded against the payload size
/// before any allocation, so a crafted file with an internally-consistent
/// checksum still fails with ContractViolation instead of an allocation
/// failure. Cache files are published atomically (temp file + rename), so
/// concurrent writers never expose a torn file.
inline constexpr uint32_t kTableFormatVersion = 2;
inline constexpr size_t kTableMagicBytes = 8;
inline constexpr size_t kTableChecksumOffset = 16;
inline constexpr size_t kTableSourceFingerprintOffset = 24;
inline constexpr size_t kTableHeaderBytes = 32;
inline constexpr char kTableCacheSuffix[] = ".hyfdbin";

/// Fast 64-bit content fingerprint (FNV-1a-style, folded a word at a time;
/// host-endian, so fingerprints are stable per machine, which is all a
/// beside-the-source cache file needs). Fingerprints source CSVs
/// (cache-freshness keys) and doubles as the payload checksum.
uint64_t FingerprintBytes(const std::string& bytes);

/// Serializes `relation` to the binary format (canonical layout, checksum
/// filled in). `source_fingerprint` records the provenance of the data so a
/// cache load can prove it still matches its source.
std::string SerializeTable(const Relation& relation,
                           uint64_t source_fingerprint = 0);

/// Parses a serialized table, validating magic, version, checksum, and every
/// structural contract. Throws ContractViolation on the first violation. If
/// `source_fingerprint` is non-null it receives the stored provenance key.
Relation ParseTable(const std::string& bytes,
                    uint64_t* source_fingerprint = nullptr);

/// File variants. Missing/unwritable files throw std::runtime_error (an
/// environment failure, not a format violation).
void WriteTableFile(const Relation& relation, const std::string& path,
                    uint64_t source_fingerprint = 0);
Relation ReadTableFile(const std::string& path,
                       uint64_t* source_fingerprint = nullptr);

/// Outcome of a LoadCsvWithCache call (for tests and benchmarks).
struct TableCacheStats {
  bool cache_hit = false;      ///< served from the binary cache file
  bool cache_written = false;  ///< cold parse refreshed the cache file
  std::string cache_path;
};

/// Loads a CSV with a transparent binary cache kept beside it
/// (`<csv>.hyfdbin`). A fresh cache — readable, matching format version, and
/// carrying the CSV's current byte fingerprint — is served in place of the
/// parse; anything else (missing, corrupt, stale, version-skewed) falls back
/// to a cold CSV parse that then rewrites the cache best-effort. Setting the
/// environment variable HYFD_TABLE_CACHE=0 (or passing `force_cold`)
/// disables both reading and writing the cache.
Relation LoadCsvWithCache(const std::string& csv_path,
                          const CsvOptions& options = {},
                          bool force_cold = false,
                          TableCacheStats* stats = nullptr);

}  // namespace hyfd

#endif  // HYFD_DATA_TABLE_IO_H_

#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>

namespace hyfd {
namespace {

uint64_t Mix(uint64_t x) {
  // splitmix64 finalizer: turns source-value tuples into derived values.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Sampler for Zipf(s) over {0, ..., n-1} via inverse-CDF on a precomputed
/// cumulative table. n is at most a few thousand in our configs.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s) : cdf_(n) {
    double sum = 0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  uint64_t Sample(std::mt19937_64& rng) const {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<uint64_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

std::string ValueName(int col, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "c%d_%llu", col,
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

Relation Generate(const GeneratorConfig& config) {
  const int num_cols = static_cast<int>(config.columns.size());
  Relation relation{Schema::Generic(num_cols)};
  relation.Resize(config.rows);

  // Numeric codes per column; derived columns read their sources' codes.
  std::vector<std::vector<uint64_t>> codes(
      static_cast<size_t>(num_cols), std::vector<uint64_t>(config.rows, 0));

  for (int c = 0; c < num_cols; ++c) {
    const ColumnSpec& spec = config.columns[static_cast<size_t>(c)];
    std::mt19937_64 rng(config.seed * 0x9e3779b9u + static_cast<uint64_t>(c));
    std::unique_ptr<ZipfSampler> zipf;
    if (spec.sources.empty() && spec.distribution == Distribution::kZipf &&
        spec.cardinality > 0) {
      zipf = std::make_unique<ZipfSampler>(spec.cardinality, 1.1);
    }
    std::uniform_real_distribution<double> null_draw(0.0, 1.0);
    for (size_t r = 0; r < config.rows; ++r) {
      uint64_t v;
      if (!spec.sources.empty()) {
        uint64_t h = 0x51ed270b0a1c6d3full + static_cast<uint64_t>(c);
        for (int s : spec.sources) {
          if (s < 0 || s >= c) {
            throw std::invalid_argument("generator: bad derived source column");
          }
          h = Mix(h ^ codes[static_cast<size_t>(s)][r]);
        }
        v = spec.cardinality > 0 ? h % spec.cardinality : h;
      } else if (spec.cardinality == 0) {
        v = r;  // key column: unique value per row
      } else if (zipf) {
        v = zipf->Sample(rng);
      } else {
        v = std::uniform_int_distribution<uint64_t>(0, spec.cardinality - 1)(rng);
      }
      codes[static_cast<size_t>(c)][r] = v;
      if (spec.null_rate > 0.0 && null_draw(rng) < spec.null_rate) {
        relation.SetNull(r, c);
      } else {
        relation.SetValue(r, c, ValueName(c, v));
      }
    }
  }
  return relation;
}

Relation GenerateFdReduced(size_t rows, int cols, uint64_t domain, uint64_t seed) {
  GeneratorConfig config;
  config.rows = rows;
  config.seed = seed;
  config.columns.assign(static_cast<size_t>(cols),
                        ColumnSpec{.cardinality = domain});
  return Generate(config);
}

Relation MakeAddressDataset(size_t rows, uint64_t seed) {
  // firstname(200) -> gender(derived/2), zipcode(500) -> city(derived/300),
  // birthdate(4000) -> age(derived/80); plus a person id key and a free
  // "street" column.
  GeneratorConfig config;
  config.rows = rows;
  config.seed = seed;
  config.columns = {
      ColumnSpec{.cardinality = 0},                                   // id
      ColumnSpec{.cardinality = 200},                                 // firstname
      ColumnSpec{.cardinality = 2, .sources = {1}},                   // gender
      ColumnSpec{.cardinality = 500, .distribution = Distribution::kZipf},  // zip
      ColumnSpec{.cardinality = 300, .sources = {3}},                 // city
      ColumnSpec{.cardinality = 4000},                                // birthdate
      ColumnSpec{.cardinality = 80, .sources = {5}},                  // age
      ColumnSpec{.cardinality = 1000},                                // street
  };
  Relation r = Generate(config);
  Relation named{Schema({"id", "firstname", "gender", "zipcode", "city",
                         "birthdate", "age", "street"})};
  named.Resize(r.num_rows());
  for (size_t row = 0; row < r.num_rows(); ++row) {
    for (int c = 0; c < r.num_columns(); ++c) {
      if (r.IsNull(row, c)) {
        named.SetNull(row, c);
      } else {
        named.SetValue(row, c, r.Value(row, c));
      }
    }
  }
  return named;
}

Relation MakeClassExample() {
  return Relation::FromStringRows(Schema({"Teacher", "Subject"}),
                                  {{"Brown", "Math"},
                                   {"Walker", "Math"},
                                   {"Brown", "English"},
                                   {"Miller", "English"},
                                   {"Brown", "Math"}});
}

}  // namespace hyfd

#include "data/datasets.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "data/generators.h"
#include "data/table_io.h"
#include "util/check.h"

namespace hyfd {
namespace {

/// Column-mix family a dataset stand-in is generated from.
enum class Family {
  kUciCategorical,  ///< few columns, small categorical domains (iris, chess, ...)
  kMixed,           ///< keys + categorical + correlated columns (adult, ncvoter)
  kWideSparse,      ///< many low-cardinality columns with NULLs (plista, uniprot)
  kRandom,          ///< uniform random cells (fd-reduced)
};

struct Entry {
  DatasetSpec spec;
  Family family;
  uint64_t seed;
};

const std::vector<Entry>& Registry() {
  static const auto* entries = new std::vector<Entry>{
      // ---- Table 1 datasets ------------------------------------------------
      {{"iris", 5, 150, 150, 4}, Family::kUciCategorical, 101},
      {{"balance-scale", 5, 625, 625, 1}, Family::kUciCategorical, 102},
      {{"chess", 7, 28056, 28056, 1}, Family::kUciCategorical, 103},
      {{"abalone", 9, 4177, 4177, 137}, Family::kUciCategorical, 104},
      {{"nursery", 9, 12960, 12960, 1}, Family::kUciCategorical, 105},
      {{"breast-cancer", 11, 699, 699, 46}, Family::kUciCategorical, 106},
      {{"bridges", 13, 108, 108, 142}, Family::kUciCategorical, 107},
      {{"echocardiogram", 13, 132, 132, 527}, Family::kUciCategorical, 108},
      {{"adult", 14, 48842, 48842, 78}, Family::kMixed, 109},
      {{"letter", 17, 20000, 20000, 61}, Family::kUciCategorical, 110},
      {{"ncvoter", 19, 1000, 1000, 758}, Family::kMixed, 111},
      {{"hepatitis", 20, 155, 155, 8250}, Family::kUciCategorical, 112},
      {{"horse", 27, 368, 368, 128727}, Family::kWideSparse, 113},
      {{"fd-reduced-30", 30, 250000, 30000, 89571}, Family::kRandom, 114},
      {{"plista", 63, 1000, 1000, 178152}, Family::kWideSparse, 115},
      {{"flight", 109, 1000, 1000, 982631}, Family::kWideSparse, 116},
      {{"uniprot", 223, 1000, 1000, 0}, Family::kWideSparse, 117},
      // ---- Table 2 (large) datasets ---------------------------------------
      {{"lineitem", 16, 6000000, 60000, 4000}, Family::kMixed, 118},
      {{"poly-seq", 13, 17000000, 80000, 68}, Family::kMixed, 119},
      {{"atom-site", 31, 27000000, 8000, 10000}, Family::kMixed, 120},
      {{"zbc00dt", 35, 3000000, 5000, 211}, Family::kMixed, 121},
      {{"iloa", 48, 45000000, 5000, 16000}, Family::kMixed, 122},
      {{"ce4hi01", 65, 2000000, 10000, 2000}, Family::kWideSparse, 123},
      {{"ncvoter-statewide", 71, 1000000, 10000, 5000000}, Family::kMixed, 124},
      {{"cd", 107, 10000, 2000, 36000}, Family::kWideSparse, 125},
  };
  return *entries;
}

ColumnSpec ProfileColumn(Family family, int c, size_t rows) {
  auto low = [&](uint64_t k) { return ColumnSpec{.cardinality = k}; };
  switch (family) {
    case Family::kUciCategorical: {
      // Small categorical domains plus one correlated column per cycle.
      switch (c % 5) {
        case 0:
          return low(2 + static_cast<uint64_t>(c) % 4);
        case 1:
          return low(5 + static_cast<uint64_t>(c) % 7);
        case 2:
          return ColumnSpec{.cardinality = 12,
                            .distribution = Distribution::kZipf};
        case 3:
          return low(std::max<uint64_t>(3, rows / 40));
        default:
          return ColumnSpec{.cardinality = 6, .sources = {c - 2}};
      }
    }
    case Family::kMixed: {
      switch (c % 6) {
        case 0:
          // First column is identifier-like but collides occasionally
          // (voter ids repeat across snapshots); later cycle-0 columns are
          // mid-cardinality attributes.
          return c == 0 ? ColumnSpec{.cardinality =
                                         4 * std::max<uint64_t>(rows, 1),
                                     .null_rate = 0.01}
                        : low(std::max<uint64_t>(8, rows / 50));
        case 1:
          return ColumnSpec{.cardinality = 200,
                            .distribution = Distribution::kZipf};
        case 2:
          return ColumnSpec{.cardinality = 150, .sources = {c - 1}};
        case 3:
          return low(40 + static_cast<uint64_t>(c) % 60);
        case 4:
          return low(std::max<uint64_t>(10, rows / 20));
        default:
          return ColumnSpec{.cardinality = 100000, .sources = {c - 3, c - 1}};
      }
    }
    case Family::kWideSparse: {
      // Wide real-world data (uniprot, plista, flight) is dominated by
      // high-cardinality, NULL-heavy columns; keeping generated domains
      // large keeps the minimal-FD border low in the lattice, like the
      // originals.
      switch (c % 6) {
        case 0:
          // Identifier-like: almost unique, but rare collisions and NULLs
          // keep it from being a pure key (pure keys would hand the lattice
          // algorithms their strongest pruning, which real uniprot/plista
          // data does not).
          return ColumnSpec{.cardinality = 4 * std::max<uint64_t>(rows, 1),
                            .null_rate = 0.02};
        case 1:
          return ColumnSpec{.cardinality = std::max<uint64_t>(30, rows / 2),
                            .null_rate = 0.05};
        case 2:
          return ColumnSpec{.cardinality = 200,
                            .distribution = Distribution::kZipf,
                            .null_rate = 0.05};
        case 3:
          return ColumnSpec{.cardinality = 5000, .sources = {c - 2}};
        case 4:
          return ColumnSpec{.cardinality = std::max<uint64_t>(50, rows),
                            .null_rate = 0.1};
        default:
          return ColumnSpec{.cardinality = 25, .null_rate = 0.3};
      }
    }
    case Family::kRandom:
      return ColumnSpec{.cardinality = 1000};
  }
  return ColumnSpec{.cardinality = 10};
}

}  // namespace

const std::vector<DatasetSpec>& PaperDatasets() {
  static const auto* specs = [] {
    auto* v = new std::vector<DatasetSpec>();
    for (const auto& e : Registry()) v->push_back(e.spec);
    return v;
  }();
  return *specs;
}

const DatasetSpec& FindDataset(const std::string& name) {
  for (const auto& e : Registry()) {
    if (e.spec.name == name) return e.spec;
  }
  throw std::out_of_range("unknown dataset: " + name);
}

Relation MakeDataset(const std::string& name, size_t rows, int columns) {
  for (const auto& e : Registry()) {
    if (e.spec.name != name) continue;
    if (rows == 0) rows = e.spec.default_rows;
    if (columns == 0) columns = e.spec.columns;
    GeneratorConfig config;
    config.rows = rows;
    config.seed = e.seed;
    config.columns.reserve(static_cast<size_t>(columns));
    for (int c = 0; c < columns; ++c) {
      config.columns.push_back(ProfileColumn(e.family, c, rows));
    }
    return Generate(config);
  }
  throw std::out_of_range("unknown dataset: " + name);
}

Relation MakeDatasetCached(const std::string& name, size_t rows, int columns,
                           DatasetCacheStats* stats) {
  const Entry* entry = nullptr;
  for (const auto& e : Registry()) {
    if (e.spec.name == name) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) throw std::out_of_range("unknown dataset: " + name);
  const size_t effective_rows = rows == 0 ? entry->spec.default_rows : rows;
  const int effective_columns = columns == 0 ? entry->spec.columns : columns;

  const char* disabled = std::getenv("HYFD_TABLE_CACHE");
  const bool cache_enabled =
      disabled == nullptr ||
      (std::strcmp(disabled, "0") != 0 && std::strcmp(disabled, "off") != 0 &&
       std::strcmp(disabled, "OFF") != 0);
  if (!cache_enabled) {
    if (stats != nullptr) *stats = DatasetCacheStats{};
    return MakeDataset(name, rows, columns);
  }

  // The provenance key covers everything that determines the generated
  // bytes: name, shape, generator seed, and (via FingerprintBytes over the
  // serialized form — which embeds kTableFormatVersion in its header checksum
  // contract) the storage format version.
  const std::string recipe = name + "|" + std::to_string(effective_rows) +
                             "|" + std::to_string(effective_columns) + "|" +
                             std::to_string(entry->seed) + "|fmt" +
                             std::to_string(kTableFormatVersion);
  const uint64_t recipe_fingerprint = FingerprintBytes(recipe);

  const char* dir_env = std::getenv("HYFD_TABLE_CACHE_DIR");
  const std::filesystem::path dir =
      dir_env != nullptr ? std::filesystem::path(dir_env)
                         : std::filesystem::path(".hyfd-table-cache");
  const std::filesystem::path path =
      dir / (name + "-" + std::to_string(effective_rows) + "x" +
             std::to_string(effective_columns) + kTableCacheSuffix);

  DatasetCacheStats local;
  local.cache_path = path.string();
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    try {
      uint64_t stored = 0;
      Relation relation = ReadTableFile(path.string(), &stored);
      if (stored == recipe_fingerprint) {
        local.cache_hit = true;
        if (stats != nullptr) *stats = std::move(local);
        return relation;
      }
      // Stale recipe (registry/seed/format changed): regenerate below.
    } catch (const std::exception&) {
      // Corrupt cache file (ContractViolation), unreadable file
      // (std::runtime_error), or anything else a damaged cache can trigger:
      // regenerate and overwrite.
    }
  }

  Relation relation = MakeDataset(name, rows, columns);
  std::filesystem::create_directories(dir, ec);  // best-effort
  try {
    WriteTableFile(relation, path.string(), recipe_fingerprint);
    local.cache_written = true;
  } catch (const std::runtime_error&) {
    // Unwritable cache directory: degrade to regeneration every call.
  }
  if (stats != nullptr) *stats = std::move(local);
  return relation;
}

}  // namespace hyfd

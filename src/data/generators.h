#ifndef HYFD_DATA_GENERATORS_H_
#define HYFD_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "data/relation.h"

namespace hyfd {

/// Value distribution of a generated column.
enum class Distribution {
  kUniform,
  kZipf,  ///< Zipf(s = 1.1) — few very frequent values, long tail.
};

/// Recipe for one generated column.
///
/// A column is either *base* (values drawn i.i.d. from a domain of
/// `cardinality` values) or *derived* (`sources` non-empty: the value is a
/// deterministic function of the source columns' values, folded into
/// `cardinality` buckets). Derived columns plant the FD `sources -> column`;
/// small cardinalities additionally create accidental FDs, which is exactly
/// the structure real data exhibits.
struct ColumnSpec {
  /// Number of distinct values; 0 means "unique per row" (a key column).
  uint64_t cardinality = 0;
  Distribution distribution = Distribution::kUniform;
  /// Fraction of cells replaced by NULL.
  double null_rate = 0.0;
  /// Indexes of source columns for a derived column (must be < this column).
  std::vector<int> sources;
};

/// Full recipe for a synthetic relation.
struct GeneratorConfig {
  size_t rows = 0;
  std::vector<ColumnSpec> columns;
  uint64_t seed = 42;
};

/// Materializes a relation from `config`. Deterministic in the seed.
Relation Generate(const GeneratorConfig& config);

/// The `fd-reduced` generator (paper §10.4): every cell uniform random in
/// `[0, domain)`. With domain ≈ 1000 all minimal FDs sit around lattice
/// level three, the regime where bottom-up algorithms shine.
Relation GenerateFdReduced(size_t rows, int cols, uint64_t domain, uint64_t seed);

/// The paper's introductory address example: firstname -> gender,
/// zipcode -> city, birthdate -> age all hold by construction.
Relation MakeAddressDataset(size_t rows, uint64_t seed);

/// The Class(Teacher, Subject) example of paper §5 (5 fixed tuples).
Relation MakeClassExample();

}  // namespace hyfd

#endif  // HYFD_DATA_GENERATORS_H_

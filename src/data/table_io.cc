#include "data/table_io.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/check.h"

namespace hyfd {
namespace {

/// FNV-1a-style fold, 8 input bytes per step (a byte-serial FNV costs more
/// than the rest of a warm cache load combined). Corruption detection and
/// staleness checks need speed and dispersion, not cryptographic strength.
uint64_t FingerprintRange(const char* data, size_t n) {
  constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t h = 1469598103934665603ull ^ (static_cast<uint64_t>(n) * kPrime);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t chunk;
    std::memcpy(&chunk, data + i, 8);
    h = (h ^ chunk) * kPrime;
    h ^= h >> 29;  // multiply alone never mixes high bits back down
  }
  uint64_t tail = 0;
  for (size_t j = 0; i + j < n; ++j) {
    tail |= static_cast<uint64_t>(static_cast<unsigned char>(data[i + j]))
            << (8 * j);
  }
  h = (h ^ tail) * kPrime;
  h ^= h >> 32;
  return h;
}

constexpr char kMagic[kTableMagicBytes] = {'H', 'Y', 'F', 'D',
                                           'T', 'B', 'L', '\0'};

static_assert(kTableFormatVersion == 2,
              "bump Relation's kStorageFingerprintVersion (relation.cc) in "
              "lockstep with the table format version");

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void AppendU8(std::string* out, uint8_t v) { AppendRaw(out, &v, 1); }

void AppendU32(std::string* out, uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(bytes, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(bytes, 8);
}

void AppendString(std::string* out, const std::string& s) {
  HYFD_CHECK(s.size() <= UINT32_MAX, "table_io: string too long to serialize");
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked little-endian reader over the payload. Every read that
/// would run past the end throws ContractViolation — the "truncated file"
/// failure mode when the checksum happens to be patched up too.
class ByteReader {
 public:
  ByteReader(const std::string& buffer, size_t pos)
      : buffer_(buffer), pos_(pos) {}

  uint8_t ReadU8() {
    Require(1);
    return static_cast<uint8_t>(buffer_[pos_++]);
  }

  uint32_t ReadU32() {
    Require(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(buffer_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t ReadU64() {
    Require(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(buffer_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::string ReadString() {
    const uint32_t n = ReadU32();
    Require(n);
    std::string s = buffer_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  /// Bulk read of `n` little-endian u32 values — the code-vector fast path.
  /// One bounds check for the whole vector, then a memcpy on little-endian
  /// hosts (a per-element decode loop elsewhere).
  std::vector<uint32_t> ReadU32Vector(size_t n) {
    // Divide instead of multiplying: n comes from the file, and an absurd
    // row count must hit the truncation check, not overflow size_t.
    HYFD_CHECK(n <= (buffer_.size() - pos_) / sizeof(uint32_t),
               "table_io: truncated table (read past end of payload)");
    std::vector<uint32_t> values(n);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(values.data(), buffer_.data() + pos_, n * sizeof(uint32_t));
      pos_ += n * sizeof(uint32_t);
    } else {
      for (size_t i = 0; i < n; ++i) values[i] = ReadU32();
    }
    return values;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return buffer_.size() - pos_; }
  bool AtEnd() const { return pos_ == buffer_.size(); }

 private:
  void Require(size_t n) {
    HYFD_CHECK(buffer_.size() - pos_ >= n,
               "table_io: truncated table (read past end of payload)");
  }

  const std::string& buffer_;
  size_t pos_ = 0;
};

bool CacheDisabledByEnv() {
  const char* v = std::getenv("HYFD_TABLE_CACHE");
  return v != nullptr && (std::strcmp(v, "0") == 0 ||
                          std::strcmp(v, "off") == 0 ||
                          std::strcmp(v, "OFF") == 0);
}

/// Single-allocation file slurp: size the buffer from the end offset and do
/// one read() — the stringstream idiom copies every byte twice.
bool SlurpFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const std::streamoff size = in.tellg();
  if (size < 0) return false;
  out->resize(static_cast<size_t>(size));
  in.seekg(0);
  in.read(out->data(), size);
  return static_cast<bool>(in);
}

std::string ReadFileBytes(const std::string& path) {
  std::string bytes;
  if (!SlurpFile(path, &bytes)) {
    throw std::runtime_error("table_io: cannot open " + path);
  }
  return bytes;
}

}  // namespace

uint64_t FingerprintBytes(const std::string& bytes) {
  return FingerprintRange(bytes.data(), bytes.size());
}

std::string SerializeTable(const Relation& relation,
                           uint64_t source_fingerprint) {
  std::string payload;
  const auto num_columns = static_cast<uint32_t>(relation.num_columns());
  AppendU32(&payload, num_columns);
  AppendU64(&payload, relation.num_rows());

  // Canonical layout is produced on the fly: the per-column plan sorts the
  // referenced dictionary entries into typed order, and codes are remapped
  // while streaming — the (const) relation itself is never normalized.
  std::vector<ColumnSegment::NormalizationPlan> plans;
  plans.reserve(num_columns);
  for (int c = 0; c < relation.num_columns(); ++c) {
    const ColumnSegment& segment = relation.segment(c);
    plans.push_back(segment.PlanNormalization());
    const ColumnSegment::NormalizationPlan& plan = plans.back();
    AppendString(&payload, relation.schema().name(c));
    AppendU8(&payload, static_cast<uint8_t>(segment.type()));
    AppendU32(&payload, static_cast<uint32_t>(plan.slots.size()));
    for (uint32_t old_code : plan.slots) {
      AppendString(&payload, segment.dictionary()[old_code]);
    }
    // Raw-spelling sections, remapped into the normalized code numbering
    // (overrides of dropped, unreferenced codes go with their entries).
    std::vector<ColumnSegment::RawSpelling> spellings;
    for (ColumnSegment::RawSpelling& spelling : segment.SortedRawSpellings()) {
      const uint32_t new_code = plan.old_to_new[spelling.first];
      if (new_code != kNullCode) {
        spellings.emplace_back(new_code, std::move(spelling.second));
      }
    }
    std::sort(spellings.begin(), spellings.end(),
              [](const ColumnSegment::RawSpelling& a,
                 const ColumnSegment::RawSpelling& b) {
                return a.first < b.first;
              });
    AppendU32(&payload, static_cast<uint32_t>(spellings.size()));
    for (const auto& [code, spelling] : spellings) {
      AppendU32(&payload, code);
      AppendString(&payload, spelling);
    }
    const std::vector<ColumnSegment::VariantRow> variants =
        segment.SortedVariantRows();
    AppendU64(&payload, variants.size());
    for (const auto& [row, raw] : variants) {
      AppendU64(&payload, row);
      AppendString(&payload, raw);
    }
  }
  for (int c = 0; c < relation.num_columns(); ++c) {
    const std::vector<uint32_t>& old_to_new = plans[static_cast<size_t>(c)].old_to_new;
    for (uint32_t code : relation.segment(c).codes()) {
      AppendU32(&payload, code == kNullCode ? kNullCode : old_to_new[code]);
    }
  }

  std::string out;
  out.reserve(kTableHeaderBytes + payload.size());
  AppendRaw(&out, kMagic, kTableMagicBytes);
  AppendU32(&out, kTableFormatVersion);
  AppendU32(&out, 0);  // flags (reserved)
  AppendU64(&out, FingerprintBytes(payload));
  AppendU64(&out, source_fingerprint);
  out += payload;
  return out;
}

Relation ParseTable(const std::string& bytes, uint64_t* source_fingerprint) {
  HYFD_CHECK(bytes.size() >= kTableHeaderBytes,
             "table_io: truncated table (shorter than the header)");
  HYFD_CHECK(std::memcmp(bytes.data(), kMagic, kTableMagicBytes) == 0,
             "table_io: bad magic (not a hyfd binary table)");
  ByteReader header(bytes, kTableMagicBytes);
  const uint32_t version = header.ReadU32();
  HYFD_CHECK(version == kTableFormatVersion,
             "table_io: unsupported format version");
  header.ReadU32();  // flags (reserved)
  const uint64_t stored_checksum = header.ReadU64();
  const uint64_t stored_source = header.ReadU64();
  HYFD_CHECK(stored_checksum ==
                 FingerprintRange(bytes.data() + kTableHeaderBytes,
                                  bytes.size() - kTableHeaderBytes),
             "table_io: payload checksum mismatch (corrupted table)");

  ByteReader reader(bytes, kTableHeaderBytes);
  const uint32_t num_columns = reader.ReadU32();
  const uint64_t num_rows = reader.ReadU64();
  // Bound every count against the bytes that could possibly back it before
  // reserving: a crafted file with an internally-consistent checksum must
  // fail as a ContractViolation, not as std::length_error/std::bad_alloc
  // escaping from an absurd reserve. Each column costs ≥ 21 payload bytes
  // (name length, type tag, three section counts).
  HYFD_CHECK(num_columns <= reader.remaining() / 21,
             "table_io: column count exceeds the payload size");

  std::vector<std::string> names;
  std::vector<ColumnType> types;
  std::vector<std::vector<std::string>> dictionaries;
  std::vector<std::vector<ColumnSegment::RawSpelling>> raw_spellings;
  std::vector<std::vector<ColumnSegment::VariantRow>> variant_rows;
  names.reserve(num_columns);
  types.reserve(num_columns);
  dictionaries.reserve(num_columns);
  raw_spellings.reserve(num_columns);
  variant_rows.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    names.push_back(reader.ReadString());
    const uint8_t type = reader.ReadU8();
    HYFD_CHECK(type <= static_cast<uint8_t>(ColumnType::kDate),
               "table_io: unknown column type tag");
    types.push_back(static_cast<ColumnType>(type));
    const uint32_t dict_size = reader.ReadU32();
    HYFD_CHECK(dict_size < kNullCode,
               "table_io: dictionary size collides with the NULL code");
    HYFD_CHECK(dict_size <= reader.remaining() / 4,
               "table_io: dictionary size exceeds the payload size");
    std::vector<std::string> dictionary;
    dictionary.reserve(dict_size);
    for (uint32_t i = 0; i < dict_size; ++i) {
      dictionary.push_back(reader.ReadString());
    }
    dictionaries.push_back(std::move(dictionary));
    const uint32_t spelling_count = reader.ReadU32();
    HYFD_CHECK(spelling_count <= reader.remaining() / 8,
               "table_io: raw-spelling count exceeds the payload size");
    std::vector<ColumnSegment::RawSpelling> spellings;
    spellings.reserve(spelling_count);
    for (uint32_t i = 0; i < spelling_count; ++i) {
      const uint32_t code = reader.ReadU32();
      spellings.emplace_back(code, reader.ReadString());
    }
    raw_spellings.push_back(std::move(spellings));
    const uint64_t variant_count = reader.ReadU64();
    HYFD_CHECK(variant_count <= reader.remaining() / 12,
               "table_io: variant-row count exceeds the payload size");
    std::vector<ColumnSegment::VariantRow> variants;
    variants.reserve(variant_count);
    for (uint64_t i = 0; i < variant_count; ++i) {
      const uint64_t row = reader.ReadU64();
      variants.emplace_back(row, reader.ReadString());
    }
    variant_rows.push_back(std::move(variants));
  }

  std::vector<ColumnSegment> segments;
  segments.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::vector<uint32_t> codes = reader.ReadU32Vector(num_rows);
    // FromParts re-validates everything the format promises: canonical
    // forms, typed sorted-unique dictionary, codes in range, every entry
    // referenced, well-formed raw spellings. A dictionary/code-count
    // mismatch surfaces here (or as a truncation above) before any Relation
    // exists.
    segments.push_back(ColumnSegment::FromParts(
        types[c], std::move(dictionaries[c]), std::move(codes),
        std::move(raw_spellings[c]), std::move(variant_rows[c])));
  }
  HYFD_CHECK(reader.AtEnd(),
             "table_io: trailing bytes after the last code vector");

  if (source_fingerprint != nullptr) *source_fingerprint = stored_source;
  return Relation::FromSegments(Schema(std::move(names)), std::move(segments));
}

void WriteTableFile(const Relation& relation, const std::string& path,
                    uint64_t source_fingerprint) {
  // Write to a unique sibling and rename over the target: rename within one
  // directory is atomic on POSIX, so concurrent writers of the same cache
  // file never expose a torn file to a concurrent reader (at worst the last
  // publisher wins — both wrote the same logical content anyway).
  //
  // Concurrency contract (DESIGN.md §11): the cache writer holds no
  // in-process capability on purpose — the publication point is the rename
  // itself, which also serializes against *other processes* sharing the
  // cache directory, something no hyfd::Mutex could do. The random tmp-name
  // suffix keeps concurrent writers' staging files from colliding.
  std::random_device entropy;
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<uint64_t>(entropy()) << 32 |
                                      entropy());
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("table_io: cannot write " + tmp_path);
    const std::string bytes = SerializeTable(relation, source_fingerprint);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      throw std::runtime_error("table_io: short write to " + tmp_path);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::error_code remove_ec;
    std::filesystem::remove(tmp_path, remove_ec);
    throw std::runtime_error("table_io: cannot publish " + path + ": " +
                             ec.message());
  }
}

Relation ReadTableFile(const std::string& path, uint64_t* source_fingerprint) {
  return ParseTable(ReadFileBytes(path), source_fingerprint);
}

Relation LoadCsvWithCache(const std::string& csv_path,
                          const CsvOptions& options, bool force_cold,
                          TableCacheStats* stats) {
  TableCacheStats local;
  local.cache_path = csv_path + kTableCacheSuffix;
  const std::string csv_bytes = ReadFileBytes(csv_path);
  const uint64_t csv_fingerprint = FingerprintBytes(csv_bytes);
  const bool cache_enabled = !force_cold && !CacheDisabledByEnv();

  if (cache_enabled) {
    std::string cached;
    if (SlurpFile(local.cache_path, &cached)) {
      try {
        uint64_t stored_source = 0;
        Relation relation = ParseTable(cached, &stored_source);
        if (stored_source == csv_fingerprint) {
          local.cache_hit = true;
          if (stats != nullptr) *stats = std::move(local);
          return relation;
        }
        // Stale: the CSV changed behind the cache file. Fall through to the
        // cold parse, which rewrites the cache under the new fingerprint.
      } catch (const std::exception&) {
        // Corrupt or version-skewed cache (ContractViolation), or anything
        // else a hostile cache file can trigger: a cache must never fail a
        // load its source could serve, so fall through and rewrite it.
      }
    }
  }

  Relation relation = ReadCsvString(csv_bytes, options);
  if (cache_enabled) {
    try {
      WriteTableFile(relation, local.cache_path, csv_fingerprint);
      local.cache_written = true;
    } catch (const std::runtime_error&) {
      // Best-effort: an unwritable cache directory degrades to cold parses.
    }
  }
  if (stats != nullptr) *stats = std::move(local);
  return relation;
}

}  // namespace hyfd

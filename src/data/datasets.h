#ifndef HYFD_DATA_DATASETS_H_
#define HYFD_DATA_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/relation.h"

namespace hyfd {

/// A named stand-in for one of the paper's evaluation datasets.
///
/// The paper evaluates on real-world data (UCI sets, ncvoter, uniprot,
/// plista, ...) that is not shipped here. Each registry entry records the
/// original shape (columns, rows) and a deterministic generator recipe that
/// mimics the dataset's *profile*: mix of key-like / high- / low-cardinality
/// columns, correlated (FD-planting) columns, and NULL rate. See DESIGN.md §3
/// for why this preserves the benchmark's behaviour.
struct DatasetSpec {
  std::string name;
  int columns = 0;
  size_t paper_rows = 0;   ///< Row count the paper used.
  size_t default_rows = 0; ///< Scaled row count we run by default.
  size_t paper_fds = 0;    ///< FD count the paper reports (0 = not reported).
};

/// All Table 1 dataset stand-ins, in the paper's order.
const std::vector<DatasetSpec>& PaperDatasets();

/// Looks up a spec by name; throws std::out_of_range for unknown names.
const DatasetSpec& FindDataset(const std::string& name);

/// Materializes a dataset stand-in. `rows == 0` uses spec.default_rows;
/// `columns == 0` uses spec.columns. Larger values than the spec's are
/// allowed for scaling experiments (extra columns repeat the profile).
Relation MakeDataset(const std::string& name, size_t rows = 0, int columns = 0);

/// Outcome of a MakeDatasetCached call (mirrors TableCacheStats).
struct DatasetCacheStats {
  bool cache_hit = false;
  bool cache_written = false;
  std::string cache_path;
};

/// MakeDataset with a transparent binary table cache: the generated relation
/// is serialized once (src/data/table_io.h) into a cache directory and
/// served from there on subsequent calls. The cache key covers the dataset
/// name, requested shape, generator seed, and storage format version, so a
/// registry or format change can never serve stale data. The directory is
/// `$HYFD_TABLE_CACHE_DIR` if set, else `.hyfd-table-cache` under the
/// current directory; HYFD_TABLE_CACHE=0 disables caching entirely.
Relation MakeDatasetCached(const std::string& name, size_t rows = 0,
                           int columns = 0,
                           DatasetCacheStats* stats = nullptr);

}  // namespace hyfd

#endif  // HYFD_DATA_DATASETS_H_

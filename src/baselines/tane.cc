#include "baselines/tane.h"

#include <memory>
#include <unordered_map>
#include <vector>

#include "fd/fd_tree.h"
#include "pli/pli.h"
#include "pli/pli_builder.h"
#include "pli/pli_cache.h"
#include "util/timer.h"

namespace hyfd {
namespace {

struct Candidate {
  std::shared_ptr<const Pli> pli;
  AttributeSet cplus;  ///< TANE's RHS⁺ candidate set C⁺(X)
  size_t error = 0;    ///< e(X) — FD check: X\A → A valid iff e(X\A) = e(X)
};

using Level = std::unordered_map<AttributeSet, Candidate>;

size_t LevelMemoryBytes(const Level& level) {
  size_t bytes = 0;
  for (const auto& [lhs, candidate] : level) {
    bytes += lhs.MemoryBytes() + candidate.cplus.MemoryBytes() +
             candidate.pli->MemoryBytes() + sizeof(Candidate);
  }
  return bytes;
}

}  // namespace

FDSet DiscoverFdsTane(const Relation& relation, const AlgoOptions& options) {
  Deadline deadline = Deadline::After(options.deadline_seconds);
  RunReport* report = InitRunReport(options, "tane", relation);
  Timer total_timer;
  Timer phase_timer;
  const int m = relation.num_columns();
  const size_t n = relation.num_rows();

  FDSet result;
  // Emitted FDs, used for exact minimality checks on the key-pruning path.
  FDTree emitted(m);

  // Shared or private PLI cache; nullptr (use_pli_cache = false) keeps the
  // original direct pairwise intersections.
  PliCache* cache = CheckSharedPliCache(options.pli_cache, relation, options);
  std::unique_ptr<PliCache> owned_cache;
  if (cache == nullptr && options.use_pli_cache) {
    PliCache::Config cache_config;
    cache_config.budget_bytes = options.pli_cache_budget_bytes;
    owned_cache = std::make_unique<PliCache>(
        BuildAllColumnPlis(relation, options.null_semantics),
        relation.num_rows(), cache_config, options.null_semantics);
    cache = owned_cache.get();
  }

  // Level 0: the empty set. e(∅) = n - 1 (one big cluster).
  Level prev;
  Candidate root;
  {
    std::vector<std::vector<RecordId>> all(1);
    for (size_t r = 0; r < n; ++r) all[0].push_back(static_cast<RecordId>(r));
    root.pli = std::make_shared<const Pli>(Pli(std::move(all), n));
  }
  root.cplus = AttributeSet::Full(m);
  root.error = root.pli->Error();
  prev.emplace(AttributeSet(m), std::move(root));

  // Level 1: single attributes.
  Level current;
  std::vector<Pli> plis;
  if (cache == nullptr) plis = BuildAllColumnPlis(relation, options.null_semantics);
  for (int a = 0; a < m; ++a) {
    Candidate c;
    c.pli = cache != nullptr
                ? cache->SingleShared(a)
                : std::make_shared<const Pli>(std::move(plis[static_cast<size_t>(a)]));
    c.error = c.pli->Error();
    c.cplus = AttributeSet::Full(m);
    current.emplace(AttributeSet(m).With(a), std::move(c));
  }

  if (report != nullptr) {
    report->AddPhase("build_plis", phase_timer.ElapsedSeconds());
    phase_timer.Restart();
  }
  PliCache::Counters cache_before;
  if (cache != nullptr) cache_before = cache->counters();

  int level_number = 1;
  while (!current.empty()) {
    deadline.Check();
    if (options.memory_tracker != nullptr) {
      options.memory_tracker->SetComponent(
          MemoryTracker::kCandidates,
          LevelMemoryBytes(current) + LevelMemoryBytes(prev));
    }

    // --- compute_dependencies -------------------------------------------
    for (auto& [lhs, candidate] : current) {
      AttributeSet check = lhs & candidate.cplus;
      ForEachBit(check, [&](int a) {
        AttributeSet x = lhs.Without(a);
        auto it = prev.find(x);
        if (it == prev.end()) return;  // generalization was pruned
        if (it->second.error == candidate.error) {
          // X\{A} -> A is valid; minimal by the C⁺ invariant, re-checked
          // exactly against everything emitted so far.
          if (!emitted.ContainsFdOrGeneralization(x, a)) {
            emitted.AddFd(x, a);
            result.Add(x, a);
          }
          candidate.cplus.Reset(a);
          AttributeSet outside = lhs.Complement();
          candidate.cplus.AndNot(outside);
        }
      });
    }

    // --- prune -----------------------------------------------------------
    // Key pruning first (using a snapshot of C⁺ values), then erase.
    std::vector<AttributeSet> to_erase;
    for (auto& [lhs, candidate] : current) {
      if (candidate.cplus.Empty()) {
        to_erase.push_back(lhs);
        continue;
      }
      bool is_key = candidate.pli->IsUnique();
      if (is_key) {
        AttributeSet rhs_candidates = candidate.cplus;
        rhs_candidates.AndNot(lhs);
        ForEachBit(rhs_candidates, [&](int a) {
          // X is a key, so X -> A is valid; emit iff minimal. All smaller
          // minimal FDs were emitted in earlier levels, so the tree lookup
          // is an exact minimality test (replaces TANE's sibling C⁺ walk).
          if (!emitted.ContainsFdOrGeneralization(lhs, a)) {
            emitted.AddFd(lhs, a);
            result.Add(lhs, a);
          }
        });
        to_erase.push_back(lhs);
      }
    }
    for (const AttributeSet& lhs : to_erase) current.erase(lhs);

    // --- generate next level (prefix-block apriori join) ------------------
    Level next;
    std::vector<AttributeSet> keys;
    keys.reserve(current.size());
    for (const auto& [lhs, _] : current) keys.push_back(lhs);
    // Prefix blocks: group by the LHS minus its highest attribute.
    std::unordered_map<AttributeSet, std::vector<AttributeSet>> blocks;
    for (const AttributeSet& lhs : keys) {
      std::vector<int> attrs = lhs.ToIndexes();
      AttributeSet prefix = lhs.Without(attrs.back());
      blocks[prefix].push_back(lhs);
    }
    for (auto& [prefix, members] : blocks) {
      deadline.Check();
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          AttributeSet joined = members[i] | members[j];
          // All immediate subsets must have survived this level.
          bool all_present = true;
          for (int a = joined.First();
               a != AttributeSet::kNpos && all_present;
               a = joined.NextAfter(a)) {
            if (!current.contains(joined.Without(a))) all_present = false;
          }
          if (!all_present) continue;
          Candidate c;
          const Candidate& left = current.at(members[i]);
          const Candidate& right = current.at(members[j]);
          // The cache derives π_joined from the largest cached subset (left
          // is passed as a floor so eviction never forces a from-singles
          // rebuild); without a cache, intersect the parents directly.
          c.pli = cache != nullptr
                      ? cache->GetWithBase(joined, members[i], left.pli)
                      : std::make_shared<const Pli>(
                            left.pli->Intersect(*right.pli));
          c.error = c.pli->Error();
          // C⁺(Y) = ∩_{A ∈ Y} C⁺(Y \ {A}).
          c.cplus = AttributeSet::Full(m);
          ForEachBit(joined, [&](int a) {
            c.cplus &= current.at(joined.Without(a)).cplus;
          });
          if (!c.cplus.Empty()) next.emplace(std::move(joined), std::move(c));
        }
      }
    }

    prev = std::move(current);
    current = std::move(next);
    ++level_number;
  }

  result.Canonicalize();
  if (report != nullptr) {
    report->AddPhase("lattice_traversal", phase_timer.ElapsedSeconds());
    report->SetCounter("tane.levels", static_cast<uint64_t>(level_number - 1));
    if (cache != nullptr) {
      PliCache::Counters after = cache->counters();
      report->pli_cache_hits = after.hits - cache_before.hits;
      report->pli_cache_misses = after.misses - cache_before.misses;
      report->pli_cache_evictions = after.evictions - cache_before.evictions;
    }
  }
  FinishRunReport(report, result.size(), total_timer.ElapsedSeconds(),
                  options.memory_tracker);
  return result;
}

}  // namespace hyfd

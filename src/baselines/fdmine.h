#ifndef HYFD_BASELINES_FDMINE_H_
#define HYFD_BASELINES_FDMINE_H_

#include "baselines/common.h"
#include "data/relation.h"
#include "fd/fd_set.h"

namespace hyfd {

/// FD_Mine (Yao, Hamilton & Butz, ICDM 2002).
///
/// Level-wise lattice traversal that, unlike TANE's RHS⁺ sets, propagates
/// per-candidate *closures* (all attributes known to be determined) and uses
/// them to prune both RHS checks and redundant LHS candidates.
///
/// Note: the original additionally prunes candidates through discovered
/// equivalences X ↔ Y; that rule is the documented source of FD_Mine's
/// non-minimal/incomplete outputs in the Papenbrock et al. (PVLDB 2015)
/// evaluation, so this implementation keeps the closure machinery but omits
/// the unsound equivalence pruning — the output is the exact minimal cover.
/// The cost profile (heavier per-candidate state, weaker pruning than TANE)
/// matches the behaviour Table 1 of the HyFD paper reports.
FDSet DiscoverFdsFdMine(const Relation& relation, const AlgoOptions& options = {});

}  // namespace hyfd

#endif  // HYFD_BASELINES_FDMINE_H_

#ifndef HYFD_BASELINES_FDEP_H_
#define HYFD_BASELINES_FDEP_H_

#include "baselines/common.h"
#include "data/relation.h"
#include "fd/fd_set.h"

namespace hyfd {

/// FDEP (Flach & Savnik, 1999): dependency induction from the full negative
/// cover.
///
/// Compares *all* record pairs to build the complete negative cover, then
/// specializes the most general FDs ∅ → A with every non-FD — exactly the
/// machinery HyFD's Inductor reuses (paper §2, §7), but exercised over every
/// pair instead of a sample. Column-efficient, quadratic in records.
FDSet DiscoverFdsFdep(const Relation& relation, const AlgoOptions& options = {});

}  // namespace hyfd

#endif  // HYFD_BASELINES_FDEP_H_

#ifndef HYFD_BASELINES_REGISTRY_H_
#define HYFD_BASELINES_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "data/relation.h"
#include "fd/fd_set.h"

namespace hyfd {

/// A uniform handle on one discovery algorithm, used by the benchmark
/// harness and the cross-checking integration tests (the role Metanome's
/// algorithm interface plays in the paper's evaluation).
struct AlgoInfo {
  std::string name;
  /// Runs the algorithm; may throw TimeoutError if options set a deadline.
  std::function<FDSet(const Relation&, const AlgoOptions&)> run;
  /// True for the paper's row-pair-based algorithms whose cost is quadratic
  /// in the record count (Dep-Miner, FastFDs, FDEP).
  bool quadratic_in_rows = false;
  /// True for lattice-traversal algorithms that scale poorly with columns.
  bool exponential_in_columns = false;
};

/// All eight algorithms of the paper's evaluation, in Table 1 column order:
/// TANE, FUN, FD_Mine, DFD, Dep-Miner, FastFDs, FDEP, HyFD.
const std::vector<AlgoInfo>& AllAlgorithms();

/// Lookup by name ("tane", "fun", "fd_mine", "dfd", "depminer", "fastfds",
/// "fdep", "hyfd"); throws std::out_of_range for unknown names.
const AlgoInfo& FindAlgorithm(const std::string& name);

}  // namespace hyfd

#endif  // HYFD_BASELINES_REGISTRY_H_

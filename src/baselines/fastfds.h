#ifndef HYFD_BASELINES_FASTFDS_H_
#define HYFD_BASELINES_FASTFDS_H_

#include "baselines/common.h"
#include "data/relation.h"
#include "fd/fd_set.h"

namespace hyfd {

/// FastFDs (Wyss, Giannella & Robertson, DaWaK 2001).
///
/// Like Dep-Miner it reduces FD discovery to finding minimal covers of
/// difference sets, but searches them depth-first, greedily ordering
/// attributes by how many remaining difference sets they cover.
FDSet DiscoverFdsFastFds(const Relation& relation, const AlgoOptions& options = {});

}  // namespace hyfd

#endif  // HYFD_BASELINES_FASTFDS_H_

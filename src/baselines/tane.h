#ifndef HYFD_BASELINES_TANE_H_
#define HYFD_BASELINES_TANE_H_

#include "baselines/common.h"
#include "data/relation.h"
#include "fd/fd_set.h"

namespace hyfd {

/// TANE (Huhtala, Kärkkäinen, Porkka & Toivonen, 1999).
///
/// Level-wise bottom-up lattice traversal with stripped partitions: candidate
/// LHSs grow apriori-style; X → A is checked via the partition error measure
/// e(X) = e(X ∪ A); RHS⁺ candidate sets and key pruning cut the lattice.
/// Row-efficient but exponential in the column count — the archetype HyFD's
/// Validator borrows its pruning rules from (paper §2, §8).
FDSet DiscoverFdsTane(const Relation& relation, const AlgoOptions& options = {});

}  // namespace hyfd

#endif  // HYFD_BASELINES_TANE_H_

#include "baselines/fdmine.h"

#include <memory>
#include <unordered_map>
#include <vector>

#include "fd/fd_tree.h"
#include "pli/pli.h"
#include "pli/pli_builder.h"
#include "pli/pli_cache.h"
#include "util/timer.h"

namespace hyfd {
namespace {

struct Candidate {
  std::shared_ptr<const Pli> pli;
  AttributeSet closure;  ///< attributes known to be determined by the LHS
};

using Level = std::unordered_map<AttributeSet, Candidate>;

}  // namespace

FDSet DiscoverFdsFdMine(const Relation& relation, const AlgoOptions& options) {
  Deadline deadline = Deadline::After(options.deadline_seconds);
  RunReport* report = InitRunReport(options, "fd_mine", relation);
  Timer total_timer;
  Timer phase_timer;
  const int m = relation.num_columns();
  const size_t n = relation.num_rows();

  FDSet result;
  FDTree emitted(m);

  // Shared or private PLI cache; nullptr (use_pli_cache = false) keeps the
  // original direct pairwise intersections.
  PliCache* cache = CheckSharedPliCache(options.pli_cache, relation, options);
  std::unique_ptr<PliCache> owned_cache;
  if (cache == nullptr && options.use_pli_cache) {
    PliCache::Config cache_config;
    cache_config.budget_bytes = options.pli_cache_budget_bytes;
    owned_cache = std::make_unique<PliCache>(
        BuildAllColumnPlis(relation, options.null_semantics),
        relation.num_rows(), cache_config, options.null_semantics);
    cache = owned_cache.get();
  }

  // Single-column probing tables for the X -> A refinement checks.
  std::vector<std::vector<ClusterId>> probing;
  std::vector<Pli> plis;
  if (cache == nullptr) {
    probing.resize(static_cast<size_t>(m));
    plis = BuildAllColumnPlis(relation, options.null_semantics);
    for (int a = 0; a < m; ++a) {
      probing[static_cast<size_t>(a)] =
          plis[static_cast<size_t>(a)].BuildProbingTable();
    }
  }
  auto probing_for = [&](int a) -> const std::vector<ClusterId>& {
    return cache != nullptr ? cache->ProbingTable(a)
                            : probing[static_cast<size_t>(a)];
  };
  auto single_for = [&](int a) -> const Pli& {
    return cache != nullptr ? cache->Single(a)
                            : plis[static_cast<size_t>(a)];
  };

  // ∅ -> A for constant columns.
  AttributeSet constants(m);
  for (int a = 0; a < m; ++a) {
    if (single_for(a).IsConstant()) {
      constants.Set(a);
      emitted.AddFd(AttributeSet(m), a);
      result.Add(AttributeSet(m), a);
    }
  }

  // Level 1 candidates: non-constant single attributes; their closure
  // starts with the constants (determined by anything).
  Level current;
  for (int a = 0; a < m; ++a) {
    if (constants.Test(a)) continue;
    Candidate c;
    c.pli = cache != nullptr
                ? cache->SingleShared(a)
                : std::make_shared<const Pli>(std::move(plis[static_cast<size_t>(a)]));
    c.closure = constants.With(a);
    current.emplace(AttributeSet(m).With(a), std::move(c));
  }

  if (report != nullptr) {
    report->AddPhase("build_plis", phase_timer.ElapsedSeconds());
    phase_timer.Restart();
  }
  PliCache::Counters cache_before;
  if (cache != nullptr) cache_before = cache->counters();

  int levels = 0;
  while (!current.empty()) {
    ++levels;
    deadline.Check();
    if (options.memory_tracker != nullptr) {
      size_t bytes = 0;
      for (const auto& [lhs, c] : current) {
        bytes += lhs.MemoryBytes() + c.pli->MemoryBytes() +
                 c.closure.MemoryBytes() + sizeof(Candidate);
      }
      options.memory_tracker->SetComponent(MemoryTracker::kCandidates, bytes);
    }

    // Check X -> A for every A outside the already-known closure.
    std::vector<AttributeSet> keys_found;
    for (auto& [lhs, candidate] : current) {
      deadline.Check();
      AttributeSet rhs_candidates = candidate.closure.Complement();
      bool is_key = candidate.pli->IsUnique() && n >= 2;
      ForEachBit(rhs_candidates, [&](int a) {
        bool valid = is_key || candidate.pli->Refines(probing_for(a));
        if (!valid) return;
        candidate.closure.Set(a);
        if (!emitted.ContainsFdOrGeneralization(lhs, a)) {
          emitted.AddFd(lhs, a);
          result.Add(lhs, a);
        }
      });
      // A key determines everything; no superset can yield new minimal FDs.
      if (is_key) keys_found.push_back(lhs);
    }
    for (const AttributeSet& key : keys_found) current.erase(key);

    // Next level: apriori join; a candidate Z is redundant if some A ∈ Z is
    // already in the closure of Z \ {A} (then Z contains a derivable
    // attribute and cannot be a minimal LHS).
    Level next;
    std::vector<AttributeSet> keys;
    for (const auto& [lhs, _] : current) keys.push_back(lhs);
    std::unordered_map<AttributeSet, std::vector<AttributeSet>> blocks;
    for (const AttributeSet& lhs : keys) {
      std::vector<int> attrs = lhs.ToIndexes();
      blocks[lhs.Without(attrs.back())].push_back(lhs);
    }
    for (auto& [prefix, members] : blocks) {
      deadline.Check();
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          AttributeSet joined = members[i] | members[j];
          if (next.contains(joined)) continue;
          bool viable = true;
          AttributeSet inherited(m);
          for (int a = joined.First(); a != AttributeSet::kNpos && viable;
               a = joined.NextAfter(a)) {
            auto it = current.find(joined.Without(a));
            if (it == current.end()) {
              viable = false;  // subset pruned
            } else if (it->second.closure.Test(a)) {
              viable = false;  // Z \ {A} -> A already: Z is redundant
            } else {
              inherited |= it->second.closure;
            }
          }
          if (!viable) continue;
          Candidate c;
          const Candidate& left = current.at(members[i]);
          c.pli = cache != nullptr
                      ? cache->GetWithBase(joined, members[i], left.pli)
                      : std::make_shared<const Pli>(left.pli->Intersect(
                            *current.at(members[j]).pli));
          c.closure = inherited | joined;
          next.emplace(std::move(joined), std::move(c));
        }
      }
    }
    current = std::move(next);
  }

  result.Canonicalize();
  if (report != nullptr) {
    report->AddPhase("lattice_traversal", phase_timer.ElapsedSeconds());
    report->SetCounter("fd_mine.levels", static_cast<uint64_t>(levels));
    if (cache != nullptr) {
      PliCache::Counters after = cache->counters();
      report->pli_cache_hits = after.hits - cache_before.hits;
      report->pli_cache_misses = after.misses - cache_before.misses;
      report->pli_cache_evictions = after.evictions - cache_before.evictions;
    }
  }
  FinishRunReport(report, result.size(), total_timer.ElapsedSeconds(),
                  options.memory_tracker);
  return result;
}

}  // namespace hyfd

#include "baselines/registry.h"

#include <stdexcept>

#include "baselines/depminer.h"
#include "baselines/dfd.h"
#include "baselines/fastfds.h"
#include "baselines/fdep.h"
#include "baselines/fdmine.h"
#include "baselines/fun.h"
#include "baselines/tane.h"
#include "core/hyfd.h"

namespace hyfd {
namespace {

FDSet RunHyFd(const Relation& relation, const AlgoOptions& options) {
  // HyFD has no cooperative deadline: the paper's point is that it finishes
  // where the others do not, and the harness budgets accordingly.
  HyFdConfig config;
  config.null_semantics = options.null_semantics;
  config.memory_tracker = options.memory_tracker;
  config.pli_cache = CheckSharedPliCache(options.pli_cache, relation, options);
  config.enable_pli_cache = options.use_pli_cache;
  config.pli_cache_budget_bytes = options.pli_cache_budget_bytes;
  config.run_report = options.run_report;
  return DiscoverFds(relation, config);
}

}  // namespace

const std::vector<AlgoInfo>& AllAlgorithms() {
  static const auto* algorithms = new std::vector<AlgoInfo>{
      {"tane", DiscoverFdsTane, false, true},
      {"fun", DiscoverFdsFun, false, true},
      {"fd_mine", DiscoverFdsFdMine, false, true},
      {"dfd", DiscoverFdsDfd, false, true},
      {"depminer", DiscoverFdsDepMiner, true, false},
      {"fastfds", DiscoverFdsFastFds, true, false},
      {"fdep", DiscoverFdsFdep, true, false},
      {"hyfd", RunHyFd, false, false},
  };
  return *algorithms;
}

const AlgoInfo& FindAlgorithm(const std::string& name) {
  for (const AlgoInfo& algo : AllAlgorithms()) {
    if (algo.name == name) return algo;
  }
  throw std::out_of_range("unknown algorithm: " + name);
}

}  // namespace hyfd

#include "baselines/fun.h"

#include <memory>
#include <unordered_map>
#include <vector>

#include "fd/fd_tree.h"
#include "pli/pli.h"
#include "pli/pli_builder.h"
#include "pli/pli_cache.h"
#include "util/timer.h"

namespace hyfd {
namespace {

struct FreeSet {
  std::shared_ptr<const Pli> pli;
  size_t cardinality = 0;  ///< |X|: distinct value combinations
};

using Level = std::unordered_map<AttributeSet, FreeSet>;

}  // namespace

FDSet DiscoverFdsFun(const Relation& relation, const AlgoOptions& options) {
  Deadline deadline = Deadline::After(options.deadline_seconds);
  RunReport* report = InitRunReport(options, "fun", relation);
  Timer total_timer;
  Timer phase_timer;
  const int m = relation.num_columns();
  const size_t n = relation.num_rows();

  FDSet result;
  FDTree emitted(m);

  // |∅| = 1: one (empty) value combination.
  const size_t empty_cardinality = n == 0 ? 0 : 1;

  // Shared or private PLI cache; nullptr (use_pli_cache = false) keeps the
  // original discard-after-check intersections.
  PliCache* cache = CheckSharedPliCache(options.pli_cache, relation, options);
  std::unique_ptr<PliCache> owned_cache;
  if (cache == nullptr && options.use_pli_cache) {
    PliCache::Config cache_config;
    cache_config.budget_bytes = options.pli_cache_budget_bytes;
    owned_cache = std::make_unique<PliCache>(
        BuildAllColumnPlis(relation, options.null_semantics),
        relation.num_rows(), cache_config, options.null_semantics);
    cache = owned_cache.get();
  }

  std::vector<Pli> plis;
  if (cache == nullptr) plis = BuildAllColumnPlis(relation, options.null_semantics);

  // Level 1: singletons. ∅ -> A iff |{A}| = |∅|.
  Level current;
  for (int a = 0; a < m; ++a) {
    FreeSet fs;
    fs.pli = cache != nullptr
                 ? cache->SingleShared(a)
                 : std::make_shared<const Pli>(std::move(plis[static_cast<size_t>(a)]));
    fs.cardinality = fs.pli->NumClusters();
    if (fs.cardinality <= empty_cardinality) {
      // Constant column: ∅ -> A; {A} is not free, prune it.
      AttributeSet lhs(m);
      emitted.AddFd(lhs, a);
      result.Add(lhs, a);
      continue;
    }
    current.emplace(AttributeSet(m).With(a), std::move(fs));
  }

  // Lazily built single-column probing tables for the |X ∪ A| computations
  // (the cache keeps them pinned; the legacy path rebuilds on demand).
  std::vector<std::vector<ClusterId>> probing(static_cast<size_t>(m));
  auto probing_for = [&](int a) -> const std::vector<ClusterId>& {
    if (cache != nullptr) return cache->ProbingTable(a);
    auto& table = probing[static_cast<size_t>(a)];
    if (table.empty() && n > 0) {
      table = BuildColumnPli(relation, a, options.null_semantics)
                  .BuildProbingTable();
    }
    return table;
  };

  if (report != nullptr) {
    report->AddPhase("build_plis", phase_timer.ElapsedSeconds());
    phase_timer.Restart();
  }
  PliCache::Counters cache_before;
  if (cache != nullptr) cache_before = cache->counters();

  int levels = 0;
  while (!current.empty()) {
    ++levels;
    deadline.Check();
    if (options.memory_tracker != nullptr) {
      size_t bytes = 0;
      for (const auto& [lhs, fs] : current) {
        bytes += lhs.MemoryBytes() + fs.pli->MemoryBytes() + sizeof(FreeSet);
      }
      options.memory_tracker->SetComponent(MemoryTracker::kCandidates, bytes);
    }

    // FD checks: for free set X and attribute A ∉ X, X -> A holds iff the
    // cardinality does not grow when adding A.

    // Non-free supersets (X ∪ A with |X ∪ A| = |X|) are recorded so the
    // next level can drop them.
    std::unordered_map<AttributeSet, bool> freeness;
    for (auto& [lhs, fs] : current) {
      deadline.Check();
      AttributeSet outside = lhs.Complement();
      ForEachBit(outside, [&](int a) {
        // |X ∪ A| = stripped clusters + singletons. With a cache the
        // intersection is kept: the next level's free sets re-request it.
        size_t card =
            cache != nullptr
                ? cache->GetWithBase(lhs.With(a), lhs, fs.pli)->NumClusters()
                : fs.pli->Intersect(probing_for(a)).NumClusters();
        if (card == fs.cardinality) {
          if (!emitted.ContainsFdOrGeneralization(lhs, a)) {
            emitted.AddFd(lhs, a);
            result.Add(lhs, a);
          }
          freeness[lhs.With(a)] = false;  // X ∪ A is not free
        }
      });
    }

    // Generate the next level: joins of current free sets; a candidate is
    // kept only if every immediate subset is a current free set and no FD
    // check marked it non-free.
    Level next;
    std::vector<AttributeSet> keys;
    for (const auto& [lhs, _] : current) keys.push_back(lhs);
    std::unordered_map<AttributeSet, std::vector<AttributeSet>> blocks;
    for (const AttributeSet& lhs : keys) {
      std::vector<int> attrs = lhs.ToIndexes();
      blocks[lhs.Without(attrs.back())].push_back(lhs);
    }
    for (auto& [prefix, members] : blocks) {
      deadline.Check();
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          AttributeSet joined = members[i] | members[j];
          if (next.contains(joined)) continue;
          auto nf = freeness.find(joined);
          if (nf != freeness.end() && !nf->second) continue;  // non-free
          bool all_free = true;
          for (int a = joined.First(); a != AttributeSet::kNpos && all_free;
               a = joined.NextAfter(a)) {
            if (!current.contains(joined.Without(a))) all_free = false;
          }
          if (!all_free) continue;
          const FreeSet& left = current.at(members[i]);
          const FreeSet& right = current.at(members[j]);
          FreeSet fs;
          fs.pli = cache != nullptr
                       ? cache->GetWithBase(joined, members[i], left.pli)
                       : std::make_shared<const Pli>(
                             left.pli->Intersect(*right.pli));
          fs.cardinality = fs.pli->NumClusters();
          // Freeness: strictly larger cardinality than every subset.
          bool free = true;
          for (int a = joined.First(); a != AttributeSet::kNpos && free;
               a = joined.NextAfter(a)) {
            if (current.at(joined.Without(a)).cardinality >= fs.cardinality) {
              free = false;
            }
          }
          if (free) next.emplace(std::move(joined), std::move(fs));
        }
      }
    }

    current = std::move(next);
  }

  result.Canonicalize();
  if (report != nullptr) {
    report->AddPhase("lattice_traversal", phase_timer.ElapsedSeconds());
    report->SetCounter("fun.levels", static_cast<uint64_t>(levels));
    if (cache != nullptr) {
      PliCache::Counters after = cache->counters();
      report->pli_cache_hits = after.hits - cache_before.hits;
      report->pli_cache_misses = after.misses - cache_before.misses;
      report->pli_cache_evictions = after.evictions - cache_before.evictions;
    }
  }
  FinishRunReport(report, result.size(), total_timer.ElapsedSeconds(),
                  options.memory_tracker);
  return result;
}

}  // namespace hyfd

#include "baselines/fastfds.h"

#include <algorithm>
#include <vector>

#include "baselines/agree_sets.h"
#include "pli/compressed_records.h"
#include "pli/pli_builder.h"
#include "util/timer.h"

namespace hyfd {
namespace {

/// One DFS node: the difference sets not yet covered and the attributes
/// still allowed for extension, ordered by the FastFDs heuristic.
struct SearchContext {
  int num_attributes;
  int rhs;
  const Deadline* deadline;
  const std::vector<AttributeSet>* all_diffs;  // for the minimality check
  FDSet* out;
};

/// FastFDs minimality test at a leaf: the chosen LHS covers everything; it
/// is minimal iff every chosen attribute is the *only* cover of some
/// difference set (otherwise dropping it would still cover all).
bool IsMinimalCover(const AttributeSet& lhs,
                    const std::vector<AttributeSet>& diffs) {
  for (int attr = lhs.First(); attr != AttributeSet::kNpos;
       attr = lhs.NextAfter(attr)) {
    bool needed = false;
    for (const AttributeSet& diff : diffs) {
      // attr is needed iff some difference set is hit by attr alone among lhs.
      AttributeSet hit = diff & lhs;
      if (hit.Count() == 1 && hit.Test(attr)) {
        needed = true;
        break;
      }
    }
    if (!needed) return false;
  }
  return true;
}

/// Attributes ordered by descending coverage of the remaining difference
/// sets (ties: smaller index first) — the FastFDs search heuristic.
std::vector<int> OrderByCoverage(const std::vector<AttributeSet>& remaining,
                                 const AttributeSet& allowed) {
  std::vector<std::pair<int, int>> counted;  // (-coverage, attr)
  for (int attr = allowed.First(); attr != AttributeSet::kNpos;
       attr = allowed.NextAfter(attr)) {
    int coverage = 0;
    for (const AttributeSet& diff : remaining) {
      if (diff.Test(attr)) ++coverage;
    }
    if (coverage > 0) counted.emplace_back(-coverage, attr);
  }
  std::sort(counted.begin(), counted.end());
  std::vector<int> order;
  order.reserve(counted.size());
  for (auto& [_, attr] : counted) order.push_back(attr);
  return order;
}

void Dfs(const SearchContext& ctx, const std::vector<AttributeSet>& remaining,
         const AttributeSet& allowed, const AttributeSet& lhs) {
  ctx.deadline->Check();
  if (remaining.empty()) {
    if (IsMinimalCover(lhs, *ctx.all_diffs)) ctx.out->Add(lhs, ctx.rhs);
    return;
  }
  std::vector<int> order = OrderByCoverage(remaining, allowed);
  if (order.empty()) return;  // uncovered difference sets, dead branch
  // Each branch takes one attribute and forbids the ones ordered before it
  // in *this* node's ordering — every candidate cover is enumerated once.
  AttributeSet branch_allowed = allowed;
  for (int attr : order) {
    branch_allowed.Reset(attr);
    std::vector<AttributeSet> next_remaining;
    for (const AttributeSet& diff : remaining) {
      if (!diff.Test(attr)) next_remaining.push_back(diff);
    }
    Dfs(ctx, next_remaining, branch_allowed, lhs.With(attr));
  }
}

}  // namespace

FDSet DiscoverFdsFastFds(const Relation& relation, const AlgoOptions& options) {
  Deadline deadline = Deadline::After(options.deadline_seconds);
  RunReport* report = InitRunReport(options, "fastfds", relation);
  Timer total_timer;
  Timer phase_timer;
  const int m = relation.num_columns();
  auto plis = BuildAllColumnPlis(relation, options.null_semantics);
  CompressedRecords records(plis, relation.num_rows());

  auto agree_sets = ComputeAgreeSets(records, deadline);

  if (options.memory_tracker != nullptr) {
    size_t bytes = 0;
    for (const auto& s : agree_sets) bytes += sizeof(AttributeSet) + s.MemoryBytes();
    options.memory_tracker->SetComponent(MemoryTracker::kAgreeSets, bytes);
  }
  if (report != nullptr) {
    report->AddPhase("agree_sets", phase_timer.ElapsedSeconds());
    report->SetCounter("fastfds.agree_sets",
                       static_cast<uint64_t>(agree_sets.size()));
    phase_timer.Restart();
  }

  FDSet result;
  for (int rhs = 0; rhs < m; ++rhs) {
    deadline.Check();
    std::vector<AttributeSet> diffs = DifferenceSetsForRhs(agree_sets, rhs, m, deadline);
    if (diffs.empty()) {
      result.Add(AttributeSet(m), rhs);
      continue;
    }
    bool impossible = false;
    for (const AttributeSet& diff : diffs) {
      if (diff.Empty()) {
        impossible = true;
        break;
      }
    }
    if (impossible) continue;
    SearchContext ctx{m, rhs, &deadline, &diffs, &result};
    AttributeSet allowed = AttributeSet::Full(m).Without(rhs);
    Dfs(ctx, diffs, allowed, AttributeSet(m));
  }
  result.Canonicalize();
  if (report != nullptr) {
    report->AddPhase("cover_search", phase_timer.ElapsedSeconds());
  }
  FinishRunReport(report, result.size(), total_timer.ElapsedSeconds(),
                  options.memory_tracker);
  return result;
}

}  // namespace hyfd

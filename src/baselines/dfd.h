#ifndef HYFD_BASELINES_DFD_H_
#define HYFD_BASELINES_DFD_H_

#include "baselines/common.h"
#include "data/relation.h"
#include "fd/fd_set.h"

namespace hyfd {

/// DFD (Abedjan, Schulze & Naumann, CIKM 2014).
///
/// Searches each RHS attribute's LHS lattice with random walks: from a
/// dependency it descends toward a minimal dependency, from a non-dependency
/// it ascends toward a maximal one; subset/superset inference against the
/// discovered border classifies most nodes for free, and a PLI store caches
/// intersected partitions. New walk seeds are the minimal transversals of
/// the maximal non-dependencies' complements, which guarantees the border is
/// complete when no uncovered seed remains.
FDSet DiscoverFdsDfd(const Relation& relation, const AlgoOptions& options = {});

}  // namespace hyfd

#endif  // HYFD_BASELINES_DFD_H_

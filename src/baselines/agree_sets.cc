#include "baselines/agree_sets.h"

#include <algorithm>

namespace hyfd {

std::unordered_set<AttributeSet> ComputeAgreeSets(const CompressedRecords& records,
                                                  const Deadline& deadline) {
  std::unordered_set<AttributeSet> agree_sets;
  const size_t n = records.num_records();
  const int m = records.num_attributes();
  for (size_t a = 0; a < n; ++a) {
    deadline.Check();
    for (size_t b = a + 1; b < n; ++b) {
      AttributeSet agree = records.Match(static_cast<RecordId>(a),
                                         static_cast<RecordId>(b));
      if (agree.Count() == m) continue;  // identical records: no difference
      agree_sets.insert(std::move(agree));
    }
  }
  return agree_sets;
}

std::vector<AttributeSet> MaximizeSets(
    const std::unordered_set<AttributeSet>& sets, const Deadline& deadline) {
  std::vector<AttributeSet> sorted(sets.begin(), sets.end());
  // Descending cardinality: a set can only be contained in a larger one.
  std::sort(sorted.begin(), sorted.end(),
            [](const AttributeSet& a, const AttributeSet& b) {
              return a.Count() > b.Count();
            });
  std::vector<AttributeSet> maximal;
  for (const AttributeSet& s : sorted) {
    deadline.Check();
    bool covered = false;
    for (const AttributeSet& max : maximal) {
      if (s.IsSubsetOf(max)) {
        covered = true;
        break;
      }
    }
    if (!covered) maximal.push_back(s);
  }
  return maximal;
}

std::vector<AttributeSet> DifferenceSetsForRhs(
    const std::unordered_set<AttributeSet>& agree_sets, int rhs,
    int num_attributes, const Deadline& deadline) {
  // Keep only agree sets whose pairs disagree on rhs, maximize among THOSE
  // (Dep-Miner's max(ag, A)), then complement: complements of maximal agree
  // sets are the minimal difference sets.
  std::unordered_set<AttributeSet> relevant;
  for (const AttributeSet& agree : agree_sets) {
    if (!agree.Test(rhs)) relevant.insert(agree);
  }
  std::vector<AttributeSet> minimal;
  for (const AttributeSet& agree : MaximizeSets(relevant, deadline)) {
    AttributeSet diff = agree.Complement();
    diff.Reset(rhs);
    minimal.push_back(std::move(diff));
  }
  (void)num_attributes;
  return minimal;
}

}  // namespace hyfd

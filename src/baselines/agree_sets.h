#ifndef HYFD_BASELINES_AGREE_SETS_H_
#define HYFD_BASELINES_AGREE_SETS_H_

#include <unordered_set>
#include <vector>

#include "baselines/common.h"
#include "pli/compressed_records.h"
#include "util/attribute_set.h"

namespace hyfd {

/// Agree sets ag(t1,t2) of all record pairs (Dep-Miner / FastFDs substrate).
///
/// Enumerates every record pair and collects the distinct agree sets — the
/// quadratic record-pair cost is inherent to the difference-/agree-set
/// family (paper §2: "they need to compare all pairs of records"). The full
/// agree set R (identical records) is skipped: it yields no difference.
std::unordered_set<AttributeSet> ComputeAgreeSets(const CompressedRecords& records,
                                                  const Deadline& deadline = {});

/// Keeps only the maximal sets (no other set is a proper superset). The
/// complements of maximal agree sets are the minimal difference sets.
std::vector<AttributeSet> MaximizeSets(const std::unordered_set<AttributeSet>& sets,
                                       const Deadline& deadline = {});

/// Minimal difference sets modulo attribute `rhs`: for every agree set Y
/// with rhs ∉ Y, the complement D = R \ Y \ {rhs} is a set of attributes of
/// which a valid LHS of an FD X → rhs must contain at least one. The agree
/// sets are maximized *per RHS* (only among those not containing rhs — a
/// global maximization would hide constraints behind supersets that do
/// contain rhs), so the returned family is minimal.
std::vector<AttributeSet> DifferenceSetsForRhs(
    const std::unordered_set<AttributeSet>& agree_sets, int rhs,
    int num_attributes, const Deadline& deadline = {});

}  // namespace hyfd

#endif  // HYFD_BASELINES_AGREE_SETS_H_

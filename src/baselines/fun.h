#ifndef HYFD_BASELINES_FUN_H_
#define HYFD_BASELINES_FUN_H_

#include "baselines/common.h"
#include "data/relation.h"
#include "fd/fd_set.h"

namespace hyfd {

/// FUN (Novelli & Cicchetti, ICDT 2001).
///
/// Level-wise traversal restricted to *free sets*: attribute sets X whose
/// cardinality |X| (number of distinct value combinations) strictly exceeds
/// that of every proper subset. Only free sets can be LHSs of minimal FDs;
/// X → A holds iff |X| = |X ∪ {A}|. Cardinalities come from PLI
/// intersection, and supersets of non-free sets are pruned apriori-style.
///
/// This implementation keeps FUN's defining machinery (free-set pruning +
/// cardinality-based checks) and enforces output minimality with an exact
/// generalization lookup instead of the original's quasi-closure
/// bookkeeping, which changes no results.
FDSet DiscoverFdsFun(const Relation& relation, const AlgoOptions& options = {});

}  // namespace hyfd

#endif  // HYFD_BASELINES_FUN_H_

#include "baselines/fdep.h"

#include <vector>

#include "baselines/agree_sets.h"
#include "core/inductor.h"
#include "fd/fd_tree.h"
#include "pli/compressed_records.h"
#include "pli/pli_builder.h"
#include "util/timer.h"

namespace hyfd {

FDSet DiscoverFdsFdep(const Relation& relation, const AlgoOptions& options) {
  Deadline deadline = Deadline::After(options.deadline_seconds);
  RunReport* report = InitRunReport(options, "fdep", relation);
  Timer total_timer;
  Timer phase_timer;
  auto plis = BuildAllColumnPlis(relation, options.null_semantics);
  CompressedRecords records(plis, relation.num_rows());

  // Negative cover: every distinct agree set of every record pair.
  std::unordered_set<AttributeSet> negative_cover =
      ComputeAgreeSets(records, deadline);
  if (options.memory_tracker != nullptr) {
    size_t bytes = 0;
    for (const auto& s : negative_cover) bytes += sizeof(AttributeSet) + s.MemoryBytes();
    options.memory_tracker->SetComponent(MemoryTracker::kNegativeCover, bytes);
  }
  deadline.Check();
  if (report != nullptr) {
    report->AddPhase("negative_cover", phase_timer.ElapsedSeconds());
    report->SetCounter("fdep.agree_sets",
                       static_cast<uint64_t>(negative_cover.size()));
    phase_timer.Restart();
  }

  // Positive cover by successive specialization (shared with HyFD).
  FDTree tree(relation.num_columns());
  Inductor inductor(&tree);
  inductor.Update(std::vector<AttributeSet>(negative_cover.begin(),
                                            negative_cover.end()));
  if (options.memory_tracker != nullptr) {
    options.memory_tracker->SetComponent(MemoryTracker::kFdTree,
                                         tree.MemoryBytes());
  }
  FDSet result = tree.ToFdSet();
  if (report != nullptr) {
    report->AddPhase("specialize", phase_timer.ElapsedSeconds());
  }
  FinishRunReport(report, result.size(), total_timer.ElapsedSeconds(),
                  options.memory_tracker);
  return result;
}

}  // namespace hyfd

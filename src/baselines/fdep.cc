#include "baselines/fdep.h"

#include <vector>

#include "baselines/agree_sets.h"
#include "core/inductor.h"
#include "fd/fd_tree.h"
#include "pli/compressed_records.h"
#include "pli/pli_builder.h"

namespace hyfd {

FDSet DiscoverFdsFdep(const Relation& relation, const AlgoOptions& options) {
  Deadline deadline = Deadline::After(options.deadline_seconds);
  auto plis = BuildAllColumnPlis(relation, options.null_semantics);
  CompressedRecords records(plis, relation.num_rows());

  // Negative cover: every distinct agree set of every record pair.
  std::unordered_set<AttributeSet> negative_cover =
      ComputeAgreeSets(records, deadline);
  if (options.memory_tracker != nullptr) {
    size_t bytes = 0;
    for (const auto& s : negative_cover) bytes += sizeof(AttributeSet) + s.MemoryBytes();
    options.memory_tracker->SetComponent(MemoryTracker::kNegativeCover, bytes);
  }
  deadline.Check();

  // Positive cover by successive specialization (shared with HyFD).
  FDTree tree(relation.num_columns());
  Inductor inductor(&tree);
  inductor.Update(std::vector<AttributeSet>(negative_cover.begin(),
                                            negative_cover.end()));
  if (options.memory_tracker != nullptr) {
    options.memory_tracker->SetComponent(MemoryTracker::kFdTree,
                                         tree.MemoryBytes());
  }
  return tree.ToFdSet();
}

}  // namespace hyfd

#ifndef HYFD_BASELINES_DEPMINER_H_
#define HYFD_BASELINES_DEPMINER_H_

#include "baselines/common.h"
#include "data/relation.h"
#include "fd/fd_set.h"

namespace hyfd {

/// Dep-Miner (Lopes, Petit & Lakhal, EDBT 2000).
///
/// Computes the maximal agree sets of all record pairs, derives per-RHS
/// minimal difference sets, and finds the left-hand sides of all minimal FDs
/// as the minimal transversals (hitting sets) of those difference-set
/// families via level-wise apriori candidate generation.
FDSet DiscoverFdsDepMiner(const Relation& relation, const AlgoOptions& options = {});

}  // namespace hyfd

#endif  // HYFD_BASELINES_DEPMINER_H_

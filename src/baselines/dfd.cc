#include "baselines/dfd.h"

#include <algorithm>
#include <random>
#include <unordered_map>
#include <vector>

#include "pli/pli.h"
#include "pli/pli_builder.h"

namespace hyfd {
namespace {

/// Lazily built, size-capped store of intersected PLIs (the DFD paper's
/// partition store). Partitions are derived from the largest cached subset.
class PliStore {
 public:
  PliStore(std::vector<Pli> single_plis, size_t num_records, size_t capacity)
      : singles_(std::move(single_plis)),
        num_records_(num_records),
        capacity_(capacity) {
    probing_.reserve(singles_.size());
    for (const Pli& pli : singles_) probing_.push_back(pli.BuildProbingTable());
  }

  const std::vector<ClusterId>& probing(int attr) const {
    return probing_[static_cast<size_t>(attr)];
  }

  const Pli& Get(const AttributeSet& attrs) {
    int count = attrs.Count();
    if (count == 1) return singles_[static_cast<size_t>(attrs.First())];
    auto it = cache_.find(attrs);
    if (it != cache_.end()) return it->second;
    // Derive from a cached immediate subset if one exists, else recurse.
    for (int a = attrs.First(); a != AttributeSet::kNpos; a = attrs.NextAfter(a)) {
      AttributeSet sub = attrs.Without(a);
      auto sit = count == 2 ? cache_.end() : cache_.find(sub);
      if (count == 2 || sit != cache_.end()) {
        const Pli& base = count == 2
                              ? singles_[static_cast<size_t>(sub.First())]
                              : sit->second;
        return Insert(attrs, base.Intersect(probing(a)));
      }
    }
    int first = attrs.First();
    const Pli& base = Get(attrs.Without(first));
    return Insert(attrs, base.Intersect(probing(first)));
  }

 private:
  const Pli& Insert(const AttributeSet& attrs, Pli pli) {
    if (cache_.size() >= capacity_) cache_.clear();  // crude eviction
    return cache_.emplace(attrs, std::move(pli)).first->second;
  }

  std::vector<Pli> singles_;
  std::vector<std::vector<ClusterId>> probing_;
  size_t num_records_;
  size_t capacity_;
  std::unordered_map<AttributeSet, Pli> cache_;
};

/// Per-RHS lattice search state.
class RhsSearch {
 public:
  RhsSearch(PliStore* store, int rhs, const AttributeSet& available,
            std::mt19937_64* rng, const Deadline* deadline)
      : store_(store),
        rhs_(rhs),
        available_(available),
        rng_(rng),
        deadline_(deadline) {}

  std::vector<AttributeSet> Run() {
    // Initial seeds: the singletons.
    std::vector<AttributeSet> seeds;
    ForEachBit(available_, [&](int a) {
      seeds.push_back(AttributeSet(available_.size()).With(a));
    });
    while (true) {
      for (const AttributeSet& seed : seeds) {
        if (Covered(seed)) continue;
        Walk(seed);
      }
      seeds = NextSeeds();
      if (seeds.empty()) break;
    }
    return min_deps_;
  }

 private:
  bool IsDep(const AttributeSet& lhs) {
    for (const AttributeSet& dep : min_deps_) {
      if (dep.IsSubsetOf(lhs)) return true;
    }
    for (const AttributeSet& nondep : max_non_deps_) {
      if (lhs.IsSubsetOf(nondep)) return false;
    }
    auto it = cache_.find(lhs);
    if (it != cache_.end()) return it->second;
    deadline_->Check();
    bool dep = lhs.Empty()
                   ? false  // constant RHS handled before the search
                   : store_->Get(lhs).Refines(store_->probing(rhs_));
    cache_.emplace(lhs, dep);
    return dep;
  }

  /// True iff the border already classifies `lhs`.
  bool Covered(const AttributeSet& lhs) const {
    for (const AttributeSet& dep : min_deps_) {
      if (dep.IsSubsetOf(lhs)) return true;
    }
    for (const AttributeSet& nondep : max_non_deps_) {
      if (lhs.IsSubsetOf(nondep)) return true;
    }
    return false;
  }

  /// Random walk: descend from dependencies, ascend from non-dependencies,
  /// until one border element (minimal dep or maximal non-dep) is pinned.
  void Walk(AttributeSet node) {
    while (true) {
      deadline_->Check();
      if (IsDep(node)) {
        std::vector<int> attrs = node.ToIndexes();
        std::shuffle(attrs.begin(), attrs.end(), *rng_);
        bool descended = false;
        for (int a : attrs) {
          AttributeSet child = node.Without(a);
          if (child.Empty() ? false : IsDep(child)) {
            node = child;
            descended = true;
            break;
          }
        }
        if (descended) continue;
        AddMinDep(node);
        return;
      }
      std::vector<int> attrs;
      AttributeSet outside = available_;
      outside.AndNot(node);
      ForEachBit(outside, [&](int a) { attrs.push_back(a); });
      std::shuffle(attrs.begin(), attrs.end(), *rng_);
      bool ascended = false;
      for (int a : attrs) {
        AttributeSet parent = node.With(a);
        if (!IsDep(parent)) {
          node = parent;
          ascended = true;
          break;
        }
      }
      if (ascended) continue;
      AddMaxNonDep(node);
      return;
    }
  }

  void AddMinDep(const AttributeSet& dep) { min_deps_.push_back(dep); }
  void AddMaxNonDep(const AttributeSet& nondep) {
    max_non_deps_.push_back(nondep);
  }

  /// Seeds for the next round: minimal transversals of the complements of
  /// all maximal non-dependencies, minus anything already covered. If no
  /// uncovered seed exists the dependency border is complete.
  std::vector<AttributeSet> NextSeeds() {
    const int m = available_.size();
    std::vector<AttributeSet> seeds{AttributeSet(m)};
    for (const AttributeSet& nondep : max_non_deps_) {
      deadline_->Check();
      AttributeSet complement = available_;
      complement.AndNot(nondep);
      std::vector<AttributeSet> grown;
      for (const AttributeSet& seed : seeds) {
        if (seed.Intersects(complement)) {
          grown.push_back(seed);  // already escapes this non-dep
          continue;
        }
        ForEachBit(complement,
                   [&](int a) { grown.push_back(seed.With(a)); });
      }
      // Minimize to keep the cross product small.
      std::sort(grown.begin(), grown.end(),
                [](const AttributeSet& a, const AttributeSet& b) {
                  return a.Count() < b.Count();
                });
      std::vector<AttributeSet> minimal;
      for (const AttributeSet& s : grown) {
        bool covered = false;
        for (const AttributeSet& kept : minimal) {
          if (kept.IsSubsetOf(s)) {
            covered = true;
            break;
          }
        }
        if (!covered) minimal.push_back(s);
      }
      seeds = std::move(minimal);
    }
    std::vector<AttributeSet> uncovered;
    for (const AttributeSet& seed : seeds) {
      if (!seed.Empty() && !Covered(seed)) uncovered.push_back(seed);
    }
    return uncovered;
  }

  PliStore* store_;
  int rhs_;
  AttributeSet available_;
  std::mt19937_64* rng_;
  const Deadline* deadline_;
  std::unordered_map<AttributeSet, bool> cache_;
  std::vector<AttributeSet> min_deps_;
  std::vector<AttributeSet> max_non_deps_;
};

}  // namespace

FDSet DiscoverFdsDfd(const Relation& relation, const AlgoOptions& options) {
  Deadline deadline = Deadline::After(options.deadline_seconds);
  const int m = relation.num_columns();

  auto plis = BuildAllColumnPlis(relation, options.null_semantics);

  FDSet result;
  // Constant columns: ∅ -> A; they are also useless inside any LHS.
  AttributeSet constants(m);
  for (int a = 0; a < m; ++a) {
    if (plis[static_cast<size_t>(a)].IsConstant()) {
      constants.Set(a);
      result.Add(AttributeSet(m), a);
    }
  }

  PliStore store(std::move(plis), relation.num_rows(), /*capacity=*/512);
  std::mt19937_64 rng(options.seed);
  if (options.memory_tracker != nullptr) {
    // The PLI store dominates DFD's footprint; charge its cap worth of the
    // single-column PLIs as a conservative estimate.
    size_t bytes = 0;
    for (int a = 0; a < m; ++a) bytes += store.probing(a).size() * sizeof(ClusterId);
    options.memory_tracker->SetComponent(MemoryTracker::kPlis, bytes);
  }

  for (int rhs = 0; rhs < m; ++rhs) {
    if (constants.Test(rhs)) continue;
    AttributeSet available = AttributeSet::Full(m);
    available.Reset(rhs);
    available.AndNot(constants);
    RhsSearch search(&store, rhs, available, &rng, &deadline);
    for (const AttributeSet& lhs : search.Run()) result.Add(lhs, rhs);
  }
  result.Canonicalize();
  return result;
}

}  // namespace hyfd

#include "baselines/dfd.h"

#include <algorithm>
#include <memory>
#include <random>
#include <unordered_map>
#include <vector>

#include "pli/pli.h"
#include "pli/pli_builder.h"
#include "pli/pli_cache.h"
#include "util/timer.h"

namespace hyfd {
namespace {

// The DFD paper's partition store is the shared PliCache: partitions are
// derived from the largest cached subset and evicted LRU under the byte
// budget (the old private store evicted by clearing everything).

/// Per-RHS lattice search state.
class RhsSearch {
 public:
  RhsSearch(PliCache* store, int rhs, const AttributeSet& available,
            std::mt19937_64* rng, const Deadline* deadline)
      : store_(store),
        rhs_(rhs),
        available_(available),
        rng_(rng),
        deadline_(deadline) {}

  std::vector<AttributeSet> Run() {
    // Initial seeds: the singletons.
    std::vector<AttributeSet> seeds;
    ForEachBit(available_, [&](int a) {
      seeds.push_back(AttributeSet(available_.size()).With(a));
    });
    while (true) {
      for (const AttributeSet& seed : seeds) {
        if (Covered(seed)) continue;
        Walk(seed);
      }
      seeds = NextSeeds();
      if (seeds.empty()) break;
    }
    return min_deps_;
  }

 private:
  bool IsDep(const AttributeSet& lhs) {
    for (const AttributeSet& dep : min_deps_) {
      if (dep.IsSubsetOf(lhs)) return true;
    }
    for (const AttributeSet& nondep : max_non_deps_) {
      if (lhs.IsSubsetOf(nondep)) return false;
    }
    auto it = cache_.find(lhs);
    if (it != cache_.end()) return it->second;
    deadline_->Check();
    bool dep = lhs.Empty()
                   ? false  // constant RHS handled before the search
                   : store_->Get(lhs)->Refines(store_->ProbingTable(rhs_));
    cache_.emplace(lhs, dep);
    return dep;
  }

  /// True iff the border already classifies `lhs`.
  bool Covered(const AttributeSet& lhs) const {
    for (const AttributeSet& dep : min_deps_) {
      if (dep.IsSubsetOf(lhs)) return true;
    }
    for (const AttributeSet& nondep : max_non_deps_) {
      if (lhs.IsSubsetOf(nondep)) return true;
    }
    return false;
  }

  /// Random walk: descend from dependencies, ascend from non-dependencies,
  /// until one border element (minimal dep or maximal non-dep) is pinned.
  void Walk(AttributeSet node) {
    while (true) {
      deadline_->Check();
      if (IsDep(node)) {
        std::vector<int> attrs = node.ToIndexes();
        std::shuffle(attrs.begin(), attrs.end(), *rng_);
        bool descended = false;
        for (int a : attrs) {
          AttributeSet child = node.Without(a);
          if (child.Empty() ? false : IsDep(child)) {
            node = child;
            descended = true;
            break;
          }
        }
        if (descended) continue;
        AddMinDep(node);
        return;
      }
      std::vector<int> attrs;
      AttributeSet outside = available_;
      outside.AndNot(node);
      ForEachBit(outside, [&](int a) { attrs.push_back(a); });
      std::shuffle(attrs.begin(), attrs.end(), *rng_);
      bool ascended = false;
      for (int a : attrs) {
        AttributeSet parent = node.With(a);
        if (!IsDep(parent)) {
          node = parent;
          ascended = true;
          break;
        }
      }
      if (ascended) continue;
      AddMaxNonDep(node);
      return;
    }
  }

  void AddMinDep(const AttributeSet& dep) { min_deps_.push_back(dep); }
  void AddMaxNonDep(const AttributeSet& nondep) {
    max_non_deps_.push_back(nondep);
  }

  /// Seeds for the next round: minimal transversals of the complements of
  /// all maximal non-dependencies, minus anything already covered. If no
  /// uncovered seed exists the dependency border is complete.
  std::vector<AttributeSet> NextSeeds() {
    const int m = available_.size();
    std::vector<AttributeSet> seeds{AttributeSet(m)};
    for (const AttributeSet& nondep : max_non_deps_) {
      deadline_->Check();
      AttributeSet complement = available_;
      complement.AndNot(nondep);
      std::vector<AttributeSet> grown;
      for (const AttributeSet& seed : seeds) {
        if (seed.Intersects(complement)) {
          grown.push_back(seed);  // already escapes this non-dep
          continue;
        }
        ForEachBit(complement,
                   [&](int a) { grown.push_back(seed.With(a)); });
      }
      // Minimize to keep the cross product small.
      std::sort(grown.begin(), grown.end(),
                [](const AttributeSet& a, const AttributeSet& b) {
                  return a.Count() < b.Count();
                });
      std::vector<AttributeSet> minimal;
      for (const AttributeSet& s : grown) {
        bool covered = false;
        for (const AttributeSet& kept : minimal) {
          if (kept.IsSubsetOf(s)) {
            covered = true;
            break;
          }
        }
        if (!covered) minimal.push_back(s);
      }
      seeds = std::move(minimal);
    }
    std::vector<AttributeSet> uncovered;
    for (const AttributeSet& seed : seeds) {
      if (!seed.Empty() && !Covered(seed)) uncovered.push_back(seed);
    }
    return uncovered;
  }

  PliCache* store_;
  int rhs_;
  AttributeSet available_;
  std::mt19937_64* rng_;
  const Deadline* deadline_;
  std::unordered_map<AttributeSet, bool> cache_;
  std::vector<AttributeSet> min_deps_;
  std::vector<AttributeSet> max_non_deps_;
};

}  // namespace

FDSet DiscoverFdsDfd(const Relation& relation, const AlgoOptions& options) {
  Deadline deadline = Deadline::After(options.deadline_seconds);
  RunReport* report = InitRunReport(options, "dfd", relation);
  Timer total_timer;
  Timer phase_timer;
  const int m = relation.num_columns();

  // The partition store: a shared cache if the caller provides one, else a
  // private budgeted cache over this run's single-column PLIs. The cache's
  // byte accounting doubles as DFD's kPlis charge.
  PliCache* store = CheckSharedPliCache(options.pli_cache, relation, options);
  std::unique_ptr<PliCache> owned_store;
  if (store == nullptr) {
    PliCache::Config cache_config;
    cache_config.budget_bytes = options.pli_cache_budget_bytes;
    cache_config.enabled = options.use_pli_cache;
    cache_config.memory_tracker = options.memory_tracker;
    owned_store = std::make_unique<PliCache>(
        BuildAllColumnPlis(relation, options.null_semantics),
        relation.num_rows(), cache_config, options.null_semantics);
    store = owned_store.get();
  } else if (options.memory_tracker != nullptr) {
    options.memory_tracker->SetComponent(MemoryTracker::kPlis,
                                         store->TotalBytes());
  }

  FDSet result;
  // Constant columns: ∅ -> A; they are also useless inside any LHS.
  AttributeSet constants(m);
  for (int a = 0; a < m; ++a) {
    if (store->Single(a).IsConstant()) {
      constants.Set(a);
      result.Add(AttributeSet(m), a);
    }
  }
  std::mt19937_64 rng(options.seed);

  if (report != nullptr) {
    report->AddPhase("preprocess", phase_timer.ElapsedSeconds());
    phase_timer.Restart();
  }
  PliCache::Counters cache_before = store->counters();

  int rhs_searches = 0;
  for (int rhs = 0; rhs < m; ++rhs) {
    if (constants.Test(rhs)) continue;
    ++rhs_searches;
    AttributeSet available = AttributeSet::Full(m);
    available.Reset(rhs);
    available.AndNot(constants);
    RhsSearch search(store, rhs, available, &rng, &deadline);
    for (const AttributeSet& lhs : search.Run()) result.Add(lhs, rhs);
  }
  result.Canonicalize();
  if (report != nullptr) {
    report->AddPhase("random_walk", phase_timer.ElapsedSeconds());
    report->SetCounter("dfd.rhs_searches", static_cast<uint64_t>(rhs_searches));
    PliCache::Counters after = store->counters();
    report->pli_cache_hits = after.hits - cache_before.hits;
    report->pli_cache_misses = after.misses - cache_before.misses;
    report->pli_cache_evictions = after.evictions - cache_before.evictions;
  }
  FinishRunReport(report, result.size(), total_timer.ElapsedSeconds(),
                  options.memory_tracker);
  return result;
}

}  // namespace hyfd

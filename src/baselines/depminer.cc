#include "baselines/depminer.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "baselines/agree_sets.h"
#include "pli/compressed_records.h"
#include "pli/pli_builder.h"
#include "util/timer.h"

namespace hyfd {
namespace {

bool HitsAll(const AttributeSet& candidate, const std::vector<AttributeSet>& diffs) {
  for (const AttributeSet& diff : diffs) {
    if (!candidate.Intersects(diff)) return false;
  }
  return true;
}

/// Level-wise minimal-transversal search (the LEVELWISE procedure of the
/// Dep-Miner paper): candidates that hit every difference set are emitted as
/// minimal LHSs; the others are extended apriori-style.
void MinimalTransversals(const std::vector<AttributeSet>& diffs,
                         int num_attributes, int rhs, const Deadline& deadline,
                         FDSet* out) {
  // Attributes that appear in some difference set are the only useful ones.
  AttributeSet universe(num_attributes);
  for (const AttributeSet& diff : diffs) universe |= diff;

  std::vector<AttributeSet> level;
  ForEachBit(universe, [&](int attr) {
    level.push_back(AttributeSet(num_attributes).With(attr));
  });

  while (!level.empty()) {
    deadline.Check();
    std::vector<AttributeSet> survivors;  // non-hitting candidates
    for (const AttributeSet& candidate : level) {
      if (HitsAll(candidate, diffs)) {
        out->Add(candidate, rhs);  // minimal by apriori construction
      } else {
        survivors.push_back(candidate);
      }
    }
    // Apriori join: combine candidates sharing all but the last attribute.
    // A candidate is kept only if *all* its immediate subsets are known
    // non-hitting (standard minimality guarantee).
    std::unordered_set<AttributeSet> survivor_set(survivors.begin(),
                                                  survivors.end());
    std::vector<AttributeSet> next;
    std::unordered_set<AttributeSet> generated;
    for (size_t i = 0; i < survivors.size(); ++i) {
      for (size_t j = i + 1; j < survivors.size(); ++j) {
        AttributeSet joined = survivors[i] | survivors[j];
        if (joined.Count() != survivors[i].Count() + 1) continue;
        if (generated.contains(joined)) continue;
        bool all_subsets_known = true;
        for (int attr = joined.First();
             attr != AttributeSet::kNpos && all_subsets_known;
             attr = joined.NextAfter(attr)) {
          if (!survivor_set.contains(joined.Without(attr))) {
            all_subsets_known = false;
          }
        }
        if (!all_subsets_known) continue;
        generated.insert(joined);
        next.push_back(std::move(joined));
      }
    }
    level = std::move(next);
  }
}

}  // namespace

FDSet DiscoverFdsDepMiner(const Relation& relation, const AlgoOptions& options) {
  Deadline deadline = Deadline::After(options.deadline_seconds);
  RunReport* report = InitRunReport(options, "depminer", relation);
  Timer total_timer;
  Timer phase_timer;
  const int m = relation.num_columns();
  auto plis = BuildAllColumnPlis(relation, options.null_semantics);
  CompressedRecords records(plis, relation.num_rows());

  auto agree_sets = ComputeAgreeSets(records, deadline);

  if (options.memory_tracker != nullptr) {
    size_t bytes = 0;
    for (const auto& s : agree_sets) bytes += sizeof(AttributeSet) + s.MemoryBytes();
    options.memory_tracker->SetComponent(MemoryTracker::kAgreeSets, bytes);
  }
  if (report != nullptr) {
    report->AddPhase("agree_sets", phase_timer.ElapsedSeconds());
    report->SetCounter("depminer.agree_sets",
                       static_cast<uint64_t>(agree_sets.size()));
    phase_timer.Restart();
  }

  FDSet result;
  for (int rhs = 0; rhs < m; ++rhs) {
    deadline.Check();
    std::vector<AttributeSet> diffs = DifferenceSetsForRhs(agree_sets, rhs, m, deadline);
    if (diffs.empty()) {
      result.Add(AttributeSet(m), rhs);  // no pair disagrees: ∅ -> rhs
      continue;
    }
    bool impossible = false;  // some pair differs only in rhs
    for (const AttributeSet& diff : diffs) {
      if (diff.Empty()) {
        impossible = true;
        break;
      }
    }
    if (impossible) continue;
    MinimalTransversals(diffs, m, rhs, deadline, &result);
  }
  result.Canonicalize();
  if (report != nullptr) {
    report->AddPhase("cover_search", phase_timer.ElapsedSeconds());
  }
  FinishRunReport(report, result.size(), total_timer.ElapsedSeconds(),
                  options.memory_tracker);
  return result;
}

}  // namespace hyfd

#ifndef HYFD_BASELINES_COMMON_H_
#define HYFD_BASELINES_COMMON_H_

#include <chrono>
#include <cstdint>
#include <stdexcept>

#include "pli/pli_builder.h"
#include "util/memory_tracker.h"

namespace hyfd {

/// Thrown by any discovery algorithm whose cooperative deadline expired —
/// the benchmark harness renders it as the paper's "TL" marker.
class TimeoutError : public std::runtime_error {
 public:
  TimeoutError() : std::runtime_error("discovery exceeded its time limit") {}
};

/// Cooperative deadline checked in the algorithms' outer loops.
class Deadline {
 public:
  Deadline() = default;
  static Deadline After(double seconds) {
    Deadline d;
    if (seconds > 0) {
      d.armed_ = true;
      d.at_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
    }
    return d;
  }

  bool Expired() const {
    return armed_ && std::chrono::steady_clock::now() > at_;
  }
  void Check() const {
    if (Expired()) throw TimeoutError();
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_;
};

/// Options common to every discovery algorithm in this library.
struct AlgoOptions {
  NullSemantics null_semantics = NullSemantics::kNullEqualsNull;
  /// Soft time limit; 0 disables. Expiry raises TimeoutError.
  double deadline_seconds = 0;
  /// Seed for randomized strategies (DFD's random walk).
  uint64_t seed = 1;
  /// If set, the run charges its dominant data structures here.
  MemoryTracker* memory_tracker = nullptr;
};

}  // namespace hyfd

#endif  // HYFD_BASELINES_COMMON_H_

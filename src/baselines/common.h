#ifndef HYFD_BASELINES_COMMON_H_
#define HYFD_BASELINES_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "data/relation.h"
#include "pli/pli_builder.h"
#include "pli/pli_cache.h"
#include "util/memory_tracker.h"
#include "util/run_report.h"

namespace hyfd {

/// Thrown by any discovery algorithm whose cooperative deadline expired —
/// the benchmark harness renders it as the paper's "TL" marker.
class TimeoutError : public std::runtime_error {
 public:
  TimeoutError() : std::runtime_error("discovery exceeded its time limit") {}
};

/// Cooperative deadline checked in the algorithms' outer loops.
class Deadline {
 public:
  Deadline() = default;
  static Deadline After(double seconds) {
    Deadline d;
    if (seconds > 0) {
      d.armed_ = true;
      d.at_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
    }
    return d;
  }

  bool Expired() const {
    return armed_ && std::chrono::steady_clock::now() > at_;
  }
  void Check() const {
    if (Expired()) throw TimeoutError();
  }

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_;
};

/// Options common to every discovery algorithm in this library.
struct AlgoOptions {
  NullSemantics null_semantics = NullSemantics::kNullEqualsNull;
  /// Soft time limit; 0 disables. Expiry raises TimeoutError.
  double deadline_seconds = 0;
  /// Seed for randomized strategies (DFD's random walk).
  uint64_t seed = 1;
  /// If set, the run charges its dominant data structures here.
  MemoryTracker* memory_tracker = nullptr;
  /// Shared PLI cache reused across algorithm runs on the *same* relation
  /// (must match it in attribute count, record count, and null semantics;
  /// mismatches throw std::invalid_argument). nullptr = each lattice
  /// algorithm builds a private cache sized by `pli_cache_budget_bytes`.
  PliCache* pli_cache = nullptr;
  /// Byte budget for a privately built cache; 0 = unbounded.
  size_t pli_cache_budget_bytes = PliCache::kDefaultBudgetBytes;
  /// Ablation switch: false disables PLI caching. TANE/FUN/FD_Mine fall back
  /// to their direct per-level intersections; DFD derives every partition
  /// from the single-column PLIs without a store.
  bool use_pli_cache = true;
  /// If set, the algorithm fills a structured run report here (schema in
  /// util/run_report.h): phase spans, counters, completeness. Every registry
  /// algorithm supports this; nullptr costs nothing.
  RunReport* run_report = nullptr;
};

/// Verifies a shared cache actually describes `relation` under `options`'s
/// null semantics; throws std::invalid_argument otherwise. Returns the cache.
inline PliCache* CheckSharedPliCache(PliCache* cache, const Relation& relation,
                                     const AlgoOptions& options) {
  if (cache == nullptr) return nullptr;
  if (cache->num_attributes() != relation.num_columns() ||
      cache->num_records() != relation.num_rows() ||
      cache->null_semantics() != options.null_semantics ||
      !cache->has_singles()) {
    throw std::invalid_argument(
        "shared PliCache does not match the relation / null semantics");
  }
  return cache;
}

/// Stamps the run report attached to `options` (if any) with the run's
/// identity and returns it — nullptr means "no observability requested" and
/// every later report call must be null-guarded (ScopedPhase already is).
inline RunReport* InitRunReport(const AlgoOptions& options,
                                const char* algorithm,
                                const Relation& relation) {
  RunReport* report = options.run_report;
  if (report == nullptr) return nullptr;
  std::string dataset = std::move(report->dataset);  // harness-owned label
  *report = RunReport{};
  report->dataset = std::move(dataset);
  report->algorithm = algorithm;
  report->rows = relation.num_rows();
  report->columns = relation.num_columns();
  return report;
}

/// Finalizes a run report: result size, wall time, and — when a tracker was
/// attached — the peak footprint broken down by component.
inline void FinishRunReport(RunReport* report, size_t result_count,
                            double total_seconds,
                            const MemoryTracker* tracker) {
  if (report == nullptr) return;
  report->result_count = result_count;
  report->total_seconds = total_seconds;
  if (tracker != nullptr) {
    report->peak_memory_bytes = tracker->peak_bytes();
    report->memory_components.clear();
    for (int c = 0; c < MemoryTracker::kNumComponents; ++c) {
      size_t bytes = tracker->component_bytes(c);
      if (bytes > 0) {
        report->memory_components.emplace_back(MemoryTracker::ComponentName(c),
                                               bytes);
      }
    }
    std::sort(report->memory_components.begin(),
              report->memory_components.end());
  }
}

}  // namespace hyfd

#endif  // HYFD_BASELINES_COMMON_H_
